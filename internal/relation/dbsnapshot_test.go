package relation

import (
	"reflect"
	"testing"
)

func dbFixture() (*Database, *Instance, *Instance) {
	r := MustSchema("r", Attr("a", KindString), Attr("b", KindInt))
	s := MustSchema("s", Attr("c", KindString), Attr("d", KindInt))
	in1 := NewInstance(r)
	in2 := NewInstance(s)
	in1.MustInsert(Str("x"), Int(1))
	in1.MustInsert(Str("y"), Int(2))
	in2.MustInsert(Str("x"), Int(1))
	db := NewDatabase()
	db.Add(in1)
	db.Add(in2)
	return db, in1, in2
}

func TestDBSnapshotFreezesEveryRelation(t *testing.T) {
	db, in1, _ := dbFixture()
	d := NewDBSnapshot(db)
	if got := d.Names(); !reflect.DeepEqual(got, []string{"r", "s"}) {
		t.Fatalf("Names = %v", got)
	}
	sr, ok := d.Snapshot("r")
	if !ok || sr.Len() != 2 {
		t.Fatalf("snapshot of r missing or wrong size")
	}
	if _, ok := d.Snapshot("nosuch"); ok {
		t.Fatal("snapshot of a missing relation should not exist")
	}
	if d.Stale() {
		t.Fatal("fresh DBSnapshot must not be stale")
	}
	in1.MustInsert(Str("z"), Int(3))
	if !d.Stale() {
		t.Fatal("mutating a member instance must stale the DBSnapshot")
	}
	// The frozen view is unchanged.
	if sr.Len() != 2 {
		t.Fatal("frozen snapshot changed size under mutation")
	}
}

func TestDBSnapshotOfCachesByVersion(t *testing.T) {
	db, in1, _ := dbFixture()
	d1 := DBSnapshotOf(db)
	if d2 := DBSnapshotOf(db); d2 != d1 {
		t.Fatal("unchanged database must reuse the cached DBSnapshot")
	}
	in1.MustInsert(Str("z"), Int(3))
	d3 := DBSnapshotOf(db)
	if d3 == d1 {
		t.Fatal("mutation must invalidate the DBSnapshot cache")
	}
	s, _ := d3.Snapshot("r")
	if s.Len() != 3 {
		t.Fatalf("caught-up snapshot has %d rows, want 3", s.Len())
	}
	// Replacing an instance wholesale is also detected.
	r2 := NewInstance(in1.Schema())
	db.Add(r2)
	if !d3.Stale() {
		t.Fatal("Add must stale the snapshot")
	}
	d4 := DBSnapshotOf(db)
	s4, _ := d4.Snapshot("r")
	if s4.Len() != 0 {
		t.Fatal("DBSnapshotOf did not pick up the replaced instance")
	}
	// Source returns the database.
	if d4.Source() != db {
		t.Fatal("Source mismatch")
	}
}

func TestLookupCodesAcrossRelations(t *testing.T) {
	db, in1, in2 := dbFixture()
	_ = db
	s1 := NewSnapshot(in1)
	s2 := NewSnapshot(in2)
	ix1 := BuildCodeIndex(s1, []int{0, 1}) // r on (a, b)
	// Probe r's index with s's values: (x, 1) occurs in r, (x, 1)'s
	// codes must be translated through r's dictionaries.
	vals := []Value{s2.Value(0, 0), s2.Value(0, 1)}
	if got := ix1.LookupValues(vals); len(got) != 1 || got[0] != 0 {
		t.Fatalf("LookupValues = %v, want [0]", got)
	}
	if got := ix1.LookupValues([]Value{Str("y"), Int(2)}); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LookupValues(y,2) = %v", got)
	}
	// A value absent from its column matches nothing.
	if got := ix1.LookupValues([]Value{Str("nope"), Int(1)}); got != nil {
		t.Fatalf("LookupValues with a dictionary miss = %v, want nil", got)
	}
	// Raw code probes agree with Lookup.
	codes := []uint32{s1.Col(0)[1], s1.Col(1)[1]}
	if got := ix1.LookupCodes(codes); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LookupCodes = %v", got)
	}
	if !ix1.HasCodes(codes) {
		t.Fatal("HasCodes must report the present group")
	}
	if ix1.HasCodes([]uint32{9999, 9999}) {
		t.Fatal("HasCodes on unseen codes must be false")
	}
}

func TestLookupCodesForcedCollisions(t *testing.T) {
	r := MustSchema("r", Attr("a", KindString))
	in := NewInstance(r)
	for _, v := range []string{"p", "q", "r", "s", "t"} {
		in.MustInsert(Str(v))
	}
	snap := NewSnapshot(in)
	cx := buildCodeIndex(snap, []int{0}, func([]uint32) uint64 { return 5 })
	for row := 0; row < snap.Len(); row++ {
		codes := []uint32{snap.Col(0)[row]}
		got := cx.LookupCodes(codes)
		if len(got) != 1 || got[0] != snap.TID(row) {
			t.Fatalf("row %d: LookupCodes = %v under an all-collision table", row, got)
		}
		if !cx.HasCodes(codes) {
			t.Fatalf("row %d: HasCodes false under collisions", row)
		}
	}
	if cx.HasCodes([]uint32{1 << 30}) {
		t.Fatal("HasCodes of an unseen code must walk the chain to a miss")
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	vals := []Value{
		Null(), Bool(true), Bool(false), Int(0), Int(-17), Int(1 << 40),
		Float(2.5), Float(3), Float(-0.125), Str(""), Str("hello\x01x"),
	}
	var buf []byte
	for _, v := range vals {
		buf = v.AppendKey(buf[:0])
		if string(buf) != v.Key() {
			t.Errorf("AppendKey(%v) = %q, Key = %q", v, buf, v.Key())
		}
	}
}

func TestLookupKeyBytes(t *testing.T) {
	_, in1, _ := dbFixture()
	ix := BuildIndex(in1, []int{0})
	var buf []byte
	buf = append(Str("y").AppendKey(buf), '\x01')
	if got := ix.LookupKeyBytes(buf); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LookupKeyBytes = %v", got)
	}
}
