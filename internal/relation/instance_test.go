package relation

import (
	"bytes"
	"strings"
	"testing"
)

// customerSchema mirrors the customer schema of Section 2.1 of the paper.
func customerSchema() *Schema {
	return MustSchema("customer",
		Attr("CC", KindInt),
		Attr("AC", KindInt),
		Attr("phn", KindInt),
		Attr("name", KindString),
		Attr("street", KindString),
		Attr("city", KindString),
		Attr("zip", KindString),
	)
}

// figure1Instance builds the instance D0 of Figure 1 of the paper.
func figure1Instance() *Instance {
	in := NewInstance(customerSchema())
	in.MustInsert(Int(44), Int(131), Int(1234567), Str("Mike"), Str("Mayfield"), Str("NYC"), Str("EH4 8LE"))
	in.MustInsert(Int(44), Int(131), Int(3456789), Str("Rick"), Str("Crichton"), Str("NYC"), Str("EH4 8LE"))
	in.MustInsert(Int(1), Int(908), Int(3456789), Str("Joe"), Str("Mtn Ave"), Str("NYC"), Str("07974"))
	return in
}

func TestSchemaBasics(t *testing.T) {
	s := customerSchema()
	if s.Arity() != 7 {
		t.Fatalf("arity = %d, want 7", s.Arity())
	}
	if i := s.MustLookup("zip"); i != 6 {
		t.Errorf("zip at %d, want 6", i)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("lookup of missing attribute succeeded")
	}
	pos, err := s.Positions([]string{"CC", "AC"})
	if err != nil || pos[0] != 0 || pos[1] != 1 {
		t.Errorf("Positions = %v, %v", pos, err)
	}
	if _, err := s.Positions([]string{"nope"}); err == nil {
		t.Error("want error for unknown attribute")
	}
	if s.HasFiniteDomain() {
		t.Error("customer schema has no finite domain")
	}
}

func TestSchemaDuplicateAttribute(t *testing.T) {
	if _, err := NewSchema("r", Attr("A", KindInt), Attr("A", KindInt)); err == nil {
		t.Error("want error for duplicate attribute")
	}
	if _, err := NewSchema("", Attr("A", KindInt)); err == nil {
		t.Error("want error for empty relation name")
	}
	if _, err := NewSchema("r", Attribute{Name: "", Domain: Dom(KindInt)}); err == nil {
		t.Error("want error for empty attribute name")
	}
}

func TestSchemaProject(t *testing.T) {
	s := customerSchema()
	p, err := s.Project("addr", []string{"street", "city", "zip"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 3 || p.Attr(0).Name != "street" {
		t.Errorf("project = %v", p)
	}
	if _, err := s.Project("x", []string{"nope"}); err == nil {
		t.Error("want error projecting unknown attribute")
	}
}

func TestFiniteDomain(t *testing.T) {
	d := BoolDom()
	if !d.Finite() || d.Size() != 2 {
		t.Fatalf("bool domain: finite=%v size=%d", d.Finite(), d.Size())
	}
	if !d.Contains(Bool(true)) || d.Contains(Int(1)) {
		t.Error("bool domain membership wrong")
	}
	dd := FiniteDom(KindString, Str("a"), Str("b"), Str("a"))
	if dd.Size() != 2 {
		t.Errorf("dedup failed: size=%d", dd.Size())
	}
	inf := Dom(KindInt)
	if inf.Finite() || inf.Size() != -1 {
		t.Error("infinite domain misreported")
	}
	if !inf.Contains(Float(2)) {
		t.Error("numeric domains accept cross-kind numbers")
	}
	if inf.Contains(Str("x")) {
		t.Error("int domain should reject strings")
	}
	if !inf.Contains(Null()) {
		t.Error("null is admissible everywhere")
	}
}

func TestInstanceInsertDelete(t *testing.T) {
	in := figure1Instance()
	if in.Len() != 3 {
		t.Fatalf("len = %d, want 3", in.Len())
	}
	ids := in.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("ids = %v", ids)
	}
	if !in.Delete(ids[1]) {
		t.Fatal("delete failed")
	}
	if in.Delete(ids[1]) {
		t.Fatal("double delete succeeded")
	}
	if in.Len() != 2 {
		t.Fatalf("len after delete = %d", in.Len())
	}
	// TIDs are stable after deletion.
	tu, ok := in.Tuple(ids[2])
	if !ok || tu[3].StrVal() != "Joe" {
		t.Errorf("tuple 2 = %v, %v", tu, ok)
	}
}

func TestInstanceArityAndDomainChecks(t *testing.T) {
	in := figure1Instance()
	if _, err := in.Insert(Tuple{Int(1)}); err == nil {
		t.Error("want arity error")
	}
	if _, err := in.Insert(Tuple{Str("x"), Int(1), Int(1), Str(""), Str(""), Str(""), Str("")}); err == nil {
		t.Error("want domain error for string in int column")
	}
	s := MustSchema("r", FiniteAttr("b", BoolDom()))
	fin := NewInstance(s)
	if _, err := fin.Insert(Tuple{Bool(true)}); err != nil {
		t.Errorf("bool insert: %v", err)
	}
	if _, err := fin.Insert(Tuple{Int(2)}); err == nil {
		t.Error("want finite-domain violation")
	}
}

func TestInstanceUpdateAndWeights(t *testing.T) {
	in := figure1Instance()
	if err := in.Update(0, 5, Str("EDI")); err != nil {
		t.Fatal(err)
	}
	tu, _ := in.Tuple(0)
	if tu[5].StrVal() != "EDI" {
		t.Errorf("update did not stick: %v", tu)
	}
	if err := in.Update(99, 0, Int(1)); err == nil {
		t.Error("want error updating missing tuple")
	}
	if in.Weight(0, 5) != 1 {
		t.Errorf("default weight = %v, want 1", in.Weight(0, 5))
	}
	if err := in.SetWeight(0, 5, 0.25); err != nil {
		t.Fatal(err)
	}
	if in.Weight(0, 5) != 0.25 {
		t.Errorf("weight = %v", in.Weight(0, 5))
	}
	if in.Weight(0, 4) != 1 {
		t.Errorf("unset sibling weight = %v, want 1", in.Weight(0, 4))
	}
	if err := in.SetWeight(0, 5, 2); err == nil {
		t.Error("want error for weight > 1")
	}
	if err := in.SetWeight(42, 0, 0.5); err == nil {
		t.Error("want error for missing tuple")
	}
}

func TestInstanceCloneIndependence(t *testing.T) {
	in := figure1Instance()
	in.SetWeight(0, 0, 0.5)
	cp := in.Clone()
	cp.Update(0, 3, Str("Changed"))
	cp.MustInsert(Int(1), Int(2), Int(3), Str("n"), Str("s"), Str("c"), Str("z"))
	orig, _ := in.Tuple(0)
	if orig[3].StrVal() != "Mike" {
		t.Error("clone mutation leaked into original")
	}
	if in.Len() != 3 || cp.Len() != 4 {
		t.Errorf("lens = %d, %d", in.Len(), cp.Len())
	}
	if cp.Weight(0, 0) != 0.5 {
		t.Error("weights not cloned")
	}
}

func TestInstanceDedupAndContains(t *testing.T) {
	s := MustSchema("r", Attr("A", KindInt), Attr("B", KindString))
	in := NewInstance(s)
	in.MustInsert(Int(1), Str("x"))
	in.MustInsert(Int(1), Str("x"))
	in.MustInsert(Int(2), Str("y"))
	if !in.Contains(Tuple{Int(1), Str("x")}) {
		t.Error("contains failed")
	}
	if in.Contains(Tuple{Int(3), Str("z")}) {
		t.Error("contains false positive")
	}
	if n := in.Dedup(); n != 1 {
		t.Errorf("dedup removed %d, want 1", n)
	}
	if in.Len() != 2 {
		t.Errorf("len after dedup = %d", in.Len())
	}
}

func TestTupleHelpers(t *testing.T) {
	tu := Tuple{Int(44), Str("EH4 8LE"), Str("Mayfield")}
	pr := tu.Project([]int{0, 1})
	if len(pr) != 2 || !pr[0].Equal(Int(44)) {
		t.Errorf("project = %v", pr)
	}
	u := Tuple{Int(44), Str("EH4 8LE"), Str("Crichton")}
	if !tu.EqualOn([]int{0, 1}, u) {
		t.Error("EqualOn on shared prefix failed")
	}
	if tu.EqualOn([]int{2}, u) {
		t.Error("EqualOn on differing attr succeeded")
	}
	if tu.Equal(u) {
		t.Error("Equal on differing tuples")
	}
	if !tu.Equal(tu.Clone()) {
		t.Error("clone not equal")
	}
	if tu.Key() == u.Key() {
		t.Error("distinct tuples share Key")
	}
	if tu.KeyOn([]int{0, 1}) != u.KeyOn([]int{0, 1}) {
		t.Error("KeyOn should agree on shared projection")
	}
	if tu.Equal(Tuple{Int(44)}) {
		t.Error("different arity tuples equal")
	}
}

func TestIndexGroups(t *testing.T) {
	in := figure1Instance()
	zipPos := []int{in.Schema().MustLookup("CC"), in.Schema().MustLookup("zip")}
	ix := BuildIndex(in, zipPos)
	if ix.Len() != 2 {
		t.Fatalf("index buckets = %d, want 2", ix.Len())
	}
	t0, _ := in.Tuple(0)
	got := ix.Lookup(t0)
	if len(got) != 2 {
		t.Errorf("lookup(t0) = %v, want 2 ids", got)
	}
	groups := 0
	ix.Groups(2, func(key string, ids []TID) {
		groups++
		if len(ids) != 2 {
			t.Errorf("group %q has %d ids", key, len(ids))
		}
	})
	if groups != 1 {
		t.Errorf("groups(2) = %d, want 1", groups)
	}
	if len(ix.Positions()) != 2 {
		t.Error("positions lost")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	db.Add(figure1Instance())
	if _, ok := db.Instance("customer"); !ok {
		t.Fatal("customer missing")
	}
	if _, ok := db.Instance("nope"); ok {
		t.Fatal("phantom relation")
	}
	if got := db.Names(); len(got) != 1 || got[0] != "customer" {
		t.Errorf("names = %v", got)
	}
	if db.Size() != 3 {
		t.Errorf("size = %d", db.Size())
	}
	cp := db.Clone()
	cp.MustInstance("customer").Delete(0)
	if db.MustInstance("customer").Len() != 3 {
		t.Error("clone mutation leaked")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustInstance should panic on missing relation")
		}
	}()
	db.MustInstance("nope")
}

func TestCSVRoundTrip(t *testing.T) {
	in := figure1Instance()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "customer")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != in.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), in.Len())
	}
	want := in.Tuples()
	have := got.Tuples()
	for i := range want {
		if !want[i].Equal(have[i]) {
			t.Errorf("tuple %d: %v != %v", i, have[i], want[i])
		}
	}
	if got.Schema().Attr(0).Domain.Kind() != KindInt {
		t.Error("typed header lost")
	}
}

func TestCSVNullRoundTrip(t *testing.T) {
	s := MustSchema("r", Attr("A", KindInt), Attr("B", KindString))
	in := NewInstance(s)
	in.MustInsert(Null(), Str("x"))
	in.MustInsert(Int(2), Null())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "r")
	if err != nil {
		t.Fatal(err)
	}
	ts := got.Tuples()
	if !ts[0][0].IsNull() || !ts[1][1].IsNull() {
		t.Errorf("nulls lost: %v", ts)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("A:int\nx\n"), "r"); err == nil {
		t.Error("want parse error for non-int cell")
	}
	if _, err := ReadCSV(strings.NewReader("A:blob\n1\n"), "r"); err == nil {
		t.Error("want error for unknown kind")
	}
	if _, err := ReadCSV(strings.NewReader("A:int,B:int\n1\n"), "r"); err == nil {
		t.Error("want error for short row")
	}
	// Bare column names default to string.
	got, err := ReadCSV(strings.NewReader("A,B\nx,y\n"), "r")
	if err != nil || got.Schema().Attr(0).Domain.Kind() != KindString {
		t.Errorf("bare header: %v, %v", got, err)
	}
}
