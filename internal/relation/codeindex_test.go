package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomInstance builds a seeded instance with small value domains so
// that projections collide often and groups get large.
func randomInstance(n int, seed int64) *Instance {
	r := rand.New(rand.NewSource(seed))
	in := NewInstance(customerSchema())
	for i := 0; i < n; i++ {
		in.MustInsert(
			Int(int64(r.Intn(3))), Int(int64(r.Intn(4))), Int(int64(r.Intn(5))),
			Str(fmt.Sprintf("n%d", r.Intn(6))), Str(fmt.Sprintf("s%d", r.Intn(3))),
			Str(fmt.Sprintf("c%d", r.Intn(2))), Str(fmt.Sprintf("z%d", r.Intn(4))),
		)
	}
	// Sprinkle deletions so TIDs have gaps.
	for i := 0; i < n/10; i++ {
		in.Delete(TID(r.Intn(n)))
	}
	return in
}

// groupSets canonicalizes an index's groups as sorted "tid,tid,..."
// strings for order-insensitive comparison.
func indexGroupSets(ix *Index) []string {
	var out []string
	ix.Groups(1, func(_ string, ids []TID) {
		out = append(out, fmt.Sprint(ids))
	})
	sort.Strings(out)
	return out
}

func codeIndexGroupSets(cx *CodeIndex) []string {
	var out []string
	cx.Groups(1, func(rows []int32) {
		ids := make([]TID, len(rows))
		for i, r := range rows {
			ids[i] = cx.Snapshot().TID(int(r))
		}
		out = append(out, fmt.Sprint(ids))
	})
	sort.Strings(out)
	return out
}

func TestCodeIndexMatchesIndex(t *testing.T) {
	posSets := [][]int{{0}, {0, 1}, {0, 6}, {5}, {2, 3, 4}, {0, 1, 2, 3, 4, 5, 6}}
	for _, n := range []int{0, 1, 10, 500} {
		in := randomInstance(n, int64(n)+1)
		snap := NewSnapshot(in)
		for _, pos := range posSets {
			t.Run(fmt.Sprintf("n=%d/pos=%v", n, pos), func(t *testing.T) {
				ix := BuildIndex(in, pos)
				cx := BuildCodeIndex(snap, pos)
				if ix.Len() != cx.Len() {
					t.Fatalf("CodeIndex has %d groups, Index has %d", cx.Len(), ix.Len())
				}
				want := indexGroupSets(ix)
				got := codeIndexGroupSets(cx)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("groups diverge:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

// TestCodeIndexForcedCollisions drives every row into the same uint64
// bucket: the verification scan must still separate the groups exactly.
func TestCodeIndexForcedCollisions(t *testing.T) {
	in := randomInstance(300, 99)
	snap := NewSnapshot(in)
	for _, pos := range [][]int{{0, 1}, {5, 6}} {
		ix := BuildIndex(in, pos)
		cx := buildCodeIndex(snap, pos, func([]uint32) uint64 { return 42 })
		if ix.Len() != cx.Len() {
			t.Fatalf("pos %v: collided CodeIndex has %d groups, Index has %d", pos, cx.Len(), ix.Len())
		}
		if got, want := codeIndexGroupSets(cx), indexGroupSets(ix); !reflect.DeepEqual(got, want) {
			t.Fatalf("pos %v: collided groups diverge:\n got %v\nwant %v", pos, got, want)
		}
		// Lookup must also survive the all-collision bucket.
		for _, id := range in.IDs()[:20] {
			tup, _ := in.Tuple(id)
			if got, want := cx.Lookup(tup), ix.Lookup(tup); !reflect.DeepEqual(got, want) {
				t.Fatalf("pos %v: Lookup(t%d) = %v, want %v", pos, id, got, want)
			}
		}
	}
}

func TestCodeIndexLookup(t *testing.T) {
	in := figure1Instance()
	snap := NewSnapshot(in)
	cx := BuildCodeIndex(snap, []int{0, 1})
	ix := BuildIndex(in, []int{0, 1})
	for _, id := range in.IDs() {
		tup, _ := in.Tuple(id)
		if got, want := cx.Lookup(tup), ix.Lookup(tup); !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(t%d) = %v, want %v", id, got, want)
		}
	}
	// A projection whose values never occur returns nil without hashing.
	ghost := Tuple{Int(999), Int(999), Int(0), Str(""), Str(""), Str(""), Str("")}
	if got := cx.Lookup(ghost); got != nil {
		t.Fatalf("Lookup(ghost) = %v, want nil", got)
	}
	// GroupOf / GroupOrdinal agree with the groups.
	for row := 0; row < snap.Len(); row++ {
		rows := cx.GroupOf(row)
		found := false
		for _, r := range rows {
			if int(r) == row {
				found = true
			}
		}
		if !found {
			t.Fatalf("GroupOf(%d) = %v does not contain the row", row, rows)
		}
	}
}

func TestCodeIndexGroupsWhileStops(t *testing.T) {
	in := randomInstance(100, 5)
	snap := NewSnapshot(in)
	cx := BuildCodeIndex(snap, []int{0})
	calls := 0
	cx.GroupsWhile(1, func([]int32) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("GroupsWhile visited %d groups after fn returned false, want 1", calls)
	}
}
