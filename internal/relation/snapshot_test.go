package relation

import (
	"testing"
)

func TestDictInternEqualitySemantics(t *testing.T) {
	d := NewDict()
	a := d.Intern(Int(2))
	if b := d.Intern(Float(2.0)); b != a {
		t.Errorf("Float(2.0) got code %d, want the Int(2) code %d (Equal values must share a code)", b, a)
	}
	if c := d.Intern(Float(2.5)); c == a {
		t.Error("Float(2.5) shares a code with Int(2)")
	}
	n1 := d.Intern(Null())
	if n2 := d.Intern(Null()); n2 != n1 {
		t.Error("nulls interned to different codes")
	}
	s1 := d.Intern(Str("x"))
	if s2 := d.Intern(Str("x")); s2 != s1 {
		t.Error("equal strings interned to different codes")
	}
	if d.Intern(Str("y")) == s1 {
		t.Error("distinct strings share a code")
	}
	if got := d.Value(a); !got.Equal(Int(2)) {
		t.Errorf("decode(%d) = %v, want a value Equal to 2", a, got)
	}
	if _, ok := d.Code(Str("never")); ok {
		t.Error("Code reported a hit for a value never interned")
	}
	if code, ok := d.Code(Float(2)); !ok || code != a {
		t.Errorf("Code(Float(2)) = %d,%v; want %d,true", code, ok, a)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := figure1Instance()
	snap := NewSnapshot(in)
	if snap.Len() != in.Len() {
		t.Fatalf("snapshot has %d rows, instance %d tuples", snap.Len(), in.Len())
	}
	for row := 0; row < snap.Len(); row++ {
		id := snap.TID(row)
		back, ok := snap.Row(id)
		if !ok || back != row {
			t.Fatalf("Row(TID(%d)) = %d,%v", row, back, ok)
		}
		tup, _ := in.Tuple(id)
		for p := 0; p < in.Schema().Arity(); p++ {
			if got := snap.Value(row, p); !got.Equal(tup[p]) {
				t.Errorf("cell (%d,%d) decodes to %v, want %v", row, p, got, tup[p])
			}
		}
	}
	// Codes agree exactly on Equal cells: t1 and t2 share city and zip.
	if snap.Code(0, 5) != snap.Code(1, 5) || snap.Code(0, 6) != snap.Code(1, 6) {
		t.Error("equal cells received different codes")
	}
	if snap.Code(0, 4) == snap.Code(1, 4) {
		t.Error("distinct streets received the same code")
	}
}

func TestSnapshotRowOrderIsAscendingTIDs(t *testing.T) {
	in := figure1Instance()
	in.Delete(1) // leave a TID gap: rows must be [0, 2]
	snap := NewSnapshot(in)
	if snap.Len() != 2 || snap.TID(0) != 0 || snap.TID(1) != 2 {
		t.Fatalf("rows map to TIDs [%d %d], want [0 2]", snap.TID(0), snap.TID(1))
	}
	if _, ok := snap.Row(1); ok {
		t.Error("deleted TID 1 resolves to a row")
	}
}

func TestSnapshotStaleness(t *testing.T) {
	in := figure1Instance()
	snap := NewSnapshot(in)
	if snap.Stale() {
		t.Fatal("fresh snapshot reports stale")
	}
	if err := in.Update(0, 5, Str("EDI")); err != nil {
		t.Fatal(err)
	}
	if !snap.Stale() {
		t.Fatal("snapshot not stale after Update")
	}
	snap = NewSnapshot(in)
	if snap.Stale() {
		t.Fatal("rebuilt snapshot reports stale")
	}
	in.MustInsert(Int(7), Int(7), Int(7), Str("n"), Str("s"), Str("c"), Str("z"))
	if !snap.Stale() {
		t.Fatal("snapshot not stale after Insert")
	}
	snap = NewSnapshot(in)
	in.Delete(0)
	if !snap.Stale() {
		t.Fatal("snapshot not stale after Delete")
	}
}

// TestSnapshotFrozenAcrossUpdate asserts the copy-on-write contract:
// a snapshot keeps the pre-update values (codes and tuples both), while
// the rebuilt snapshot sees the new ones.
func TestSnapshotFrozenAcrossUpdate(t *testing.T) {
	in := figure1Instance()
	snap := NewSnapshot(in)
	before := snap.Value(0, 4) // street of t0
	if err := in.Update(0, 4, Str("Changed Rd")); err != nil {
		t.Fatal(err)
	}
	if got := snap.TupleAt(0)[4]; !got.Equal(before) {
		t.Fatalf("stale snapshot's tuple changed under it: %v", got)
	}
	if got := snap.Value(0, 4); !got.Equal(before) {
		t.Fatalf("stale snapshot's column changed under it: %v", got)
	}
	fresh := NewSnapshot(in)
	if got := fresh.Value(0, 4); !got.Equal(Str("Changed Rd")) {
		t.Fatalf("fresh snapshot missed the update: %v", got)
	}
}

func TestSnapshotOfCachesByVersion(t *testing.T) {
	in := figure1Instance()
	s1 := SnapshotOf(in)
	if s2 := SnapshotOf(in); s2 != s1 {
		t.Fatal("SnapshotOf rebuilt for an unchanged instance")
	}
	cx1 := s1.CodeIndexOn([]int{0, 1})
	if cx2 := s1.CodeIndexOn([]int{0, 1}); cx2 != cx1 {
		t.Fatal("CodeIndexOn rebuilt for the same position set")
	}
	if cx3 := s1.CodeIndexOn([]int{0, 6}); cx3 == cx1 {
		t.Fatal("CodeIndexOn returned the wrong cached index")
	}
	if err := in.Update(0, 5, Str("EDI")); err != nil {
		t.Fatal(err)
	}
	s3 := SnapshotOf(in)
	if s3 == s1 {
		t.Fatal("SnapshotOf returned a stale snapshot after Update")
	}
	if s3.Stale() || !s1.Stale() {
		t.Fatal("staleness flags wrong after rebuild")
	}
	if got := s3.Value(0, 5); !got.Equal(Str("EDI")) {
		t.Fatalf("rebuilt snapshot decodes %v, want EDI", got)
	}
}

func TestInstanceVersionAndIDsCache(t *testing.T) {
	in := figure1Instance()
	v0 := in.Version()
	ids := in.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("IDs = %v", ids)
	}
	// Insert extends the cache and keeps it sorted; version bumps.
	id := in.MustInsert(Int(7), Int(7), Int(7), Str("n"), Str("s"), Str("c"), Str("z"))
	if in.Version() == v0 {
		t.Error("Insert did not bump the version")
	}
	ids2 := in.IDs()
	if len(ids2) != 4 || ids2[3] != id {
		t.Fatalf("IDs after insert = %v", ids2)
	}
	// The previously returned slice is not mutated in its visible range.
	if len(ids) != 3 {
		t.Fatalf("earlier IDs slice changed length: %v", ids)
	}
	// Delete invalidates; the rebuilt slice is sorted with the gap.
	v1 := in.Version()
	in.Delete(1)
	if in.Version() == v1 {
		t.Error("Delete did not bump the version")
	}
	ids3 := in.IDs()
	want := []TID{0, 2, id}
	if len(ids3) != 3 || ids3[0] != want[0] || ids3[1] != want[1] || ids3[2] != want[2] {
		t.Fatalf("IDs after delete = %v, want %v", ids3, want)
	}
	// Update bumps the version but keeps the ID set (cache may survive).
	v2 := in.Version()
	if err := in.Update(0, 5, Str("EDI")); err != nil {
		t.Fatal(err)
	}
	if in.Version() == v2 {
		t.Error("Update did not bump the version")
	}
	if got := in.IDs(); len(got) != 3 {
		t.Fatalf("IDs after update = %v", got)
	}
	// Repeated calls return consistent results (the cached path).
	a, b := in.IDs(), in.IDs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached IDs unstable: %v vs %v", a, b)
		}
	}
}
