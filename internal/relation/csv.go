package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV encodes the instance as CSV. The header carries typed column
// names of the form "name:kind" (e.g. "CC:int"); finite domains are not
// serialized and must be re-attached by the caller if needed.
func WriteCSV(w io.Writer, in *Instance) error {
	cw := csv.NewWriter(w)
	s := in.Schema()
	header := make([]string, s.Arity())
	for i, a := range s.Attrs() {
		header[i] = a.Name + ":" + a.Domain.Kind().String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, s.Arity())
	for _, t := range in.Tuples() {
		for i, v := range t {
			if v.IsNull() {
				row[i] = ""
			} else {
				row[i] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes an instance from CSV produced by WriteCSV (or any CSV
// whose header uses "name:kind" column labels; a bare "name" defaults to
// kind string). The relation is given the provided name.
func ReadCSV(r io.Reader, name string) (*Instance, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %v", err)
	}
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		colName, kindName, found := strings.Cut(h, ":")
		kind := KindString
		if found {
			k, err := ParseKind(kindName)
			if err != nil {
				return nil, fmt.Errorf("relation: column %q: %v", h, err)
			}
			kind = k
		}
		attrs[i] = Attr(strings.TrimSpace(colName), kind)
	}
	schema, err := NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	in := NewInstance(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv line %d: %v", line, err)
		}
		if len(rec) != len(attrs) {
			return nil, fmt.Errorf("relation: csv line %d: %d fields, want %d", line, len(rec), len(attrs))
		}
		t := make(Tuple, len(rec))
		for i, cell := range rec {
			v, err := ParseValue(attrs[i].Domain.Kind(), cell)
			if err != nil {
				return nil, fmt.Errorf("relation: csv line %d column %s: %v", line, attrs[i].Name, err)
			}
			t[i] = v
		}
		if _, err := in.Insert(t); err != nil {
			return nil, fmt.Errorf("relation: csv line %d: %v", line, err)
		}
	}
	return in, nil
}
