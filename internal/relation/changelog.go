package relation

import (
	"sort"
	"sync/atomic"
)

// The instance changelog — the substrate of incremental snapshot and
// index maintenance. Every mutation of tuple data appends one
// (version, op, tid, pos) entry to a bounded in-memory log; derived
// structures built at version v can later catch up to version v' by
// replaying ChangesSince(v) instead of rebuilding from scratch
// (Snapshot.Apply, CodeIndex maintenance, the detect.Monitor). The log
// is bounded: a cache that has fallen behind a truncated log gets
// (nil, false) from ChangesSince and must rebuild in full.

// ChangeOp is the kind of a changelog entry.
type ChangeOp uint8

// The changelog operations.
const (
	// ChangeInsert: a tuple with a fresh TID was inserted.
	ChangeInsert ChangeOp = iota
	// ChangeDelete: the tuple was removed.
	ChangeDelete
	// ChangeUpdate: one cell (TID, Pos) was replaced.
	ChangeUpdate
)

// String names the op.
func (op ChangeOp) String() string {
	switch op {
	case ChangeInsert:
		return "insert"
	case ChangeDelete:
		return "delete"
	default:
		return "update"
	}
}

// ChangeEntry is one changelog record: the instance version after the
// mutation, the operation, the affected TID, and for updates the
// modified attribute position (-1 otherwise). Updated values are not
// recorded — replay reads the current value from the instance, which is
// correct because catch-up always replays the log to its head.
type ChangeEntry struct {
	Version uint64
	Op      ChangeOp
	TID     TID
	Pos     int
}

// defaultChangelogCap bounds the in-memory changelog. At 24 bytes per
// entry the default costs ~100 KiB per instance; when the log overflows
// the oldest half is dropped, so amortized append stays O(1).
const defaultChangelogCap = 4096

// changelogCapDefault overrides defaultChangelogCap process-wide when
// nonzero (see SetChangelogCap, the deprecated global setter). It only
// affects instances that never had a per-instance cap set.
var changelogCapDefault atomic.Int64

// ChangelogCapDefault returns the cap used by instances without a
// per-instance override.
func ChangelogCapDefault() int {
	if n := changelogCapDefault.Load(); n != 0 {
		return int(n)
	}
	return defaultChangelogCap
}

// SetChangelogCap sets the process-wide default changelog cap (n <= 0
// disables logging by default). It exists so legacy callers that sized
// "the" changelog globally keep working; it cannot size shards
// independently, which is exactly the footgun per-instance caps fix.
//
// Deprecated: use (*Instance).SetChangelogCap — or
// (*ShardedDB).SetChangelogCap for a whole shard set — so each
// instance/shard sizes its log for its own write rate.
func SetChangelogCap(n int) {
	if n <= 0 {
		n = -1
	}
	changelogCapDefault.Store(int64(n))
}

// SetChangelogCap bounds this instance's changelog to at most n entries
// (n <= 0 disables logging entirely: every ChangesSince call reports
// "too far behind" and derived caches always rebuild in full). The
// default is ChangelogCapDefault. Shrinking the cap truncates
// immediately.
func (in *Instance) SetChangelogCap(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		in.logCap = -1 // disabled (0 is reserved for "use the default")
		in.log = nil
		in.logStart = in.version
		in.evictStrandedLocked()
		return
	}
	in.logCap = n
	if len(in.log) > n {
		in.truncateLogLocked(len(in.log) - n)
	}
}

// logAppend records one mutation. Callers must have already bumped
// in.version to the entry's version. Must be called with in.mu held.
func (in *Instance) logAppend(op ChangeOp, id TID, pos int) {
	cap := in.logCap
	if cap == 0 {
		cap = ChangelogCapDefault()
	}
	if cap < 0 {
		in.logStart = in.version
		// With logging disabled every mutation strands the cached
		// snapshot (it can never catch up); release it like a truncation
		// would, or a long-lived process pins every frozen snapshot.
		in.evictStrandedLocked()
		return
	}
	in.log = append(in.log, ChangeEntry{Version: in.version, Op: op, TID: id, Pos: pos})
	if len(in.log) > cap {
		// Drop the oldest half so appends stay amortized O(1).
		in.truncateLogLocked(len(in.log) - cap/2)
	}
}

// truncateLogLocked drops the oldest n entries, advances logStart and
// evicts any derived cache the truncation stranded. Must be called with
// in.mu held.
func (in *Instance) truncateLogLocked(n int) {
	if n <= 0 {
		return
	}
	if n >= len(in.log) {
		in.log = in.log[:0]
		in.logStart = in.version
	} else {
		in.logStart = in.log[n-1].Version
		copy(in.log, in.log[n:])
		in.log = in.log[:len(in.log)-n]
	}
	in.evictStrandedLocked()
}

// evictStrandedLocked drops the cached snapshot when the changelog can
// no longer reach back to its version: such a snapshot can never catch
// up via delta, so retaining it only pins its frozen columns and group
// indexes in memory (the long-lived-process leak). Must be called with
// in.mu held.
func (in *Instance) evictStrandedLocked() {
	if s := in.snapCache; s != nil && s.version < in.logStart {
		in.snapCache = nil
	}
}

// ChangesSince returns a copy of the changelog entries recorded after
// version v, in order, and whether the log reaches back that far. The
// second result is false when the bounded log has been truncated past v
// (or logging is disabled): the caller's derived structure is too far
// behind and must rebuild from scratch. v equal to the current version
// yields (nil, true).
func (in *Instance) ChangesSince(v uint64) ([]ChangeEntry, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if v == in.version {
		return nil, true
	}
	if v < in.logStart || v > in.version {
		return nil, false
	}
	// Versions are contiguous (+1 per entry), so the first entry after v
	// sits at offset v - logStart.
	i := int(v - in.logStart)
	out := make([]ChangeEntry, len(in.log)-i)
	copy(out, in.log[i:])
	return out, true
}

// ChangelogLen returns the number of retained changelog entries.
func (in *Instance) ChangelogLen() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.log)
}

// Delta is the net effect of a contiguous changelog slice: which TIDs
// were inserted (and survive), which pre-existing TIDs were deleted, and
// which pre-existing TIDs had which attribute positions updated. A tuple
// inserted and deleted within the slice cancels out; updates to a tuple
// that is later deleted fold into the delete; updates to a tuple
// inserted within the slice fold into the insert (the insert replays the
// whole current tuple anyway).
type Delta struct {
	// Inserted lists surviving new TIDs in ascending order (TIDs are
	// allocated monotonically, so they all sort after every pre-existing
	// TID).
	Inserted []TID
	// Deleted lists removed pre-existing TIDs in ascending order.
	Deleted []TID
	// Updated maps each surviving pre-existing TID to the ascending set
	// of attribute positions whose value changed.
	Updated map[TID][]int
}

// Empty reports whether the delta nets out to no change.
func (d *Delta) Empty() bool {
	return len(d.Inserted) == 0 && len(d.Deleted) == 0 && len(d.Updated) == 0
}

// Touches reports whether the delta updates any of the given attribute
// positions of tid. Inserted and deleted TIDs are not "updates".
func (d *Delta) Touches(tid TID, pos []int) bool {
	ps, ok := d.Updated[tid]
	if !ok {
		return false
	}
	for _, p := range ps {
		for _, q := range pos {
			if p == q {
				return true
			}
		}
	}
	return false
}

// NetDelta folds a contiguous changelog slice into its net effect.
func NetDelta(entries []ChangeEntry) Delta {
	inserted := make(map[TID]bool)
	deleted := make(map[TID]bool)
	updated := make(map[TID]map[int]bool)
	for _, e := range entries {
		switch e.Op {
		case ChangeInsert:
			inserted[e.TID] = true
		case ChangeDelete:
			if inserted[e.TID] {
				delete(inserted, e.TID) // born and died within the slice
			} else {
				deleted[e.TID] = true
			}
			delete(updated, e.TID)
		case ChangeUpdate:
			if inserted[e.TID] {
				continue // folded into the insert
			}
			ps, ok := updated[e.TID]
			if !ok {
				ps = make(map[int]bool)
				updated[e.TID] = ps
			}
			ps[e.Pos] = true
		}
	}
	d := Delta{}
	for id := range inserted {
		d.Inserted = append(d.Inserted, id)
	}
	for id := range deleted {
		d.Deleted = append(d.Deleted, id)
	}
	sortTIDs(d.Inserted)
	sortTIDs(d.Deleted)
	if len(updated) > 0 {
		d.Updated = make(map[TID][]int, len(updated))
		for id, ps := range updated {
			poss := make([]int, 0, len(ps))
			for p := range ps {
				poss = append(poss, p)
			}
			sort.Ints(poss)
			d.Updated[id] = poss
		}
	}
	return d
}

func sortTIDs(ids []TID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
