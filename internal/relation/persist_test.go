package relation

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func persistFixture(t *testing.T) (*Database, map[string]*Schema) {
	t.Helper()
	order := MustSchema("order",
		Attr("id", KindInt),
		Attr("title", KindString),
		Attr("price", KindFloat),
		FiniteAttr("type", FiniteDom(KindString, Str("book"), Str("CD"))),
		FiniteAttr("paid", BoolDom()),
	)
	city := MustSchema("city",
		Attr("name", KindString),
		Attr("pop", KindInt),
	)
	ordIn := NewInstance(order)
	ordIn.MustInsert(Int(1), Str("Harry Potter"), Float(17.99), Str("book"), Bool(true))
	ordIn.MustInsert(Int(2), Str("Kind of Blue"), Float(9), Str("CD"), Bool(false))
	ordIn.MustInsert(Int(3), Null(), Float(math.Inf(1)), Null(), Null())
	ordIn.MustInsert(Int(4), Str("Harry Potter"), Float(17.99), Str("book"), Bool(true)) // duplicate values share codes
	cityIn := NewInstance(city)
	cityIn.MustInsert(Str("Edinburgh"), Int(470000))
	cityIn.MustInsert(Str(`a,b "quoted"`), Int(0)) // a string cell holding punctuation
	db := NewDatabase()
	db.Add(ordIn)
	db.Add(cityIn)
	return db, map[string]*Schema{"order": order, "city": city}
}

func checkRoundTrip(t *testing.T, got, want *Database) {
	t.Helper()
	if gn, wn := got.Names(), want.Names(); len(gn) != len(wn) {
		t.Fatalf("relations %v, want %v", gn, wn)
	}
	for _, name := range want.Names() {
		wi := want.MustInstance(name)
		gi, ok := got.Instance(name)
		if !ok {
			t.Fatalf("missing relation %q", name)
		}
		if gi.Len() != wi.Len() {
			t.Fatalf("%s: %d tuples, want %d", name, gi.Len(), wi.Len())
		}
		for _, id := range wi.IDs() {
			wt, _ := wi.Tuple(id)
			gt, ok := gi.Tuple(id)
			if !ok {
				t.Fatalf("%s: missing TID %d", name, id)
			}
			if !gt.Equal(wt) {
				t.Fatalf("%s t%d: %v, want %v", name, id, gt, wt)
			}
			// Kind-exact, not just Equal (9 vs 9.0 matter for rendering).
			for p := range wt {
				if gt[p].Kind() != wt[p].Kind() {
					t.Fatalf("%s t%d[%d]: kind %v, want %v", name, id, p, gt[p].Kind(), wt[p].Kind())
				}
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	db, schemas := persistFixture(t)
	// A deletion leaves a TID gap, and deleting the top tuple makes the
	// preserved NextTID observable.
	ord := db.MustInstance("order")
	top := ord.MustInsert(Int(9), Str("doomed"), Float(1), Str("book"), Bool(false))
	ord.Delete(top)
	ord.Delete(TID(1))
	nextTIDs := map[string]TID{"order": ord.NextTID(), "city": db.MustInstance("city").NextTID()}

	dir := t.TempDir()
	info := CheckpointInfo{
		Seq:       42,
		NextTIDs:  nextTIDs,
		ShardKeys: map[string][]int{"order": {1}},
	}
	if err := WriteCheckpoint(dir, NewDBSnapshot(db), info); err != nil {
		t.Fatal(err)
	}

	for _, withSchemas := range []bool{true, false} {
		var arg map[string]*Schema
		if withSchemas {
			arg = schemas
		}
		got, gotInfo, err := LoadCheckpoint(dir, arg)
		if err != nil {
			t.Fatalf("LoadCheckpoint(withSchemas=%v): %v", withSchemas, err)
		}
		checkRoundTrip(t, got, db)
		if gotInfo.Seq != 42 {
			t.Fatalf("Seq = %d, want 42", gotInfo.Seq)
		}
		if got := gotInfo.NextTIDs["order"]; got != nextTIDs["order"] {
			t.Fatalf("order NextTID = %d, want %d (deleted-top TID must not be reused)", got, nextTIDs["order"])
		}
		if ks := gotInfo.ShardKeys["order"]; len(ks) != 1 || ks[0] != 1 {
			t.Fatalf("ShardKeys[order] = %v, want [1]", ks)
		}
		if withSchemas {
			if got.MustInstance("order").Schema() != schemas["order"] {
				t.Fatal("caller-provided schema pointer not used")
			}
		} else {
			// Reconstructed finite domains still enforce membership.
			sch := got.MustInstance("order").Schema()
			if d := sch.Attr(3).Domain; !d.Finite() || d.Contains(Str("vinyl")) {
				t.Fatalf("finite domain not reconstructed: %v", d)
			}
		}
		// The recovered instance is live: inserts allocate fresh TIDs and
		// snapshots build cleanly.
		in := got.MustInstance("order")
		id, err := in.Insert(Tuple{Int(5), Str("new"), Float(2), Str("CD"), Bool(true)})
		if err != nil {
			t.Fatal(err)
		}
		if id != nextTIDs["order"] {
			t.Fatalf("post-recovery insert got TID %d, want %d", id, nextTIDs["order"])
		}
		if snap := SnapshotOf(in); snap.Len() != in.Len() {
			t.Fatalf("snapshot of recovered instance has %d rows, want %d", snap.Len(), in.Len())
		}
	}
}

func TestCheckpointNoCheckpoint(t *testing.T) {
	_, _, err := LoadCheckpoint(t.TempDir(), nil)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointSchemaMismatch(t *testing.T) {
	db, _ := persistFixture(t)
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, NewDBSnapshot(db), CheckpointInfo{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	bad := map[string]*Schema{
		"order": MustSchema("order", Attr("id", KindInt)), // wrong arity
		"city":  MustSchema("city", Attr("name", KindString), Attr("pop", KindInt)),
	}
	if _, _, err := LoadCheckpoint(dir, bad); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	bad["order"] = MustSchema("order",
		Attr("id", KindInt), Attr("title", KindString), Attr("price", KindString), // kind flip
		Attr("type", KindString), Attr("paid", KindBool),
	)
	if _, _, err := LoadCheckpoint(dir, bad); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

// TestCheckpointSupersede: a newer checkpoint replaces CURRENT and the
// old directory is garbage-collected; a leftover .tmp from a simulated
// crash is invisible to loads.
func TestCheckpointSupersede(t *testing.T) {
	db, _ := persistFixture(t)
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, NewDBSnapshot(db), CheckpointInfo{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	db.MustInstance("city").MustInsert(Str("Oban"), Int(8000))
	// Simulate a crash mid-write of checkpoint 2: only a partial tmp dir.
	if err := os.MkdirAll(filepath.Join(dir, "checkpoint-0000000000000002.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	got, info, err := LoadCheckpoint(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || got.MustInstance("city").Len() != 2 {
		t.Fatalf("load with stale tmp: seq %d, city %d rows", info.Seq, got.MustInstance("city").Len())
	}
	// The real checkpoint 2 lands and supersedes.
	if err := WriteCheckpoint(dir, NewDBSnapshot(db), CheckpointInfo{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	got, info, err = LoadCheckpoint(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 2 || got.MustInstance("city").Len() != 3 {
		t.Fatalf("after supersede: seq %d, city %d rows", info.Seq, got.MustInstance("city").Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "checkpoint-") && e.Name() != "checkpoint-0000000000000002" {
			t.Fatalf("old checkpoint dir %s not garbage-collected", e.Name())
		}
	}
}

func TestCheckpointRejectsUnsafeRelationName(t *testing.T) {
	sch := MustSchema("../evil", Attr("x", KindInt))
	in := NewInstance(sch)
	in.MustInsert(Int(1))
	db := NewDatabase()
	db.Add(in)
	if err := WriteCheckpoint(t.TempDir(), NewDBSnapshot(db), CheckpointInfo{}); err == nil {
		t.Fatal("path-traversing relation name accepted")
	}
}
