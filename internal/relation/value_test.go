package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "⊥"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Int(44), KindInt, "44"},
		{Int(-7), KindInt, "-7"},
		{Float(7.99), KindFloat, "7.99"},
		{Str("EDI"), KindString, "EDI"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: string = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !Int(7).Equal(Float(7)) {
		t.Error("Int(7) should equal Float(7)")
	}
	if Int(7).Equal(Float(7.5)) {
		t.Error("Int(7) should not equal Float(7.5)")
	}
	if Int(0).Equal(Str("0")) {
		t.Error("Int(0) should not equal Str(\"0\")")
	}
	if Null().Equal(Int(0)) {
		t.Error("Null should not equal Int(0)")
	}
	if !Null().Equal(Null()) {
		t.Error("Null should equal Null")
	}
}

func TestValueKeyAgreesWithEqual(t *testing.T) {
	vals := []Value{
		Null(), Bool(true), Bool(false), Int(0), Int(1), Int(-1),
		Float(0), Float(1), Float(1.5), Str(""), Str("0"), Str("a"), Str("b"),
	}
	for _, v := range vals {
		for _, w := range vals {
			if (v.Key() == w.Key()) != v.Equal(w) {
				t.Errorf("key/equal mismatch for %v vs %v", v, w)
			}
		}
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{Null(), Bool(false), Bool(true), Int(-3), Int(0), Float(0.5), Int(2), Str("a"), Str("b")}
	for i, v := range vals {
		for j, w := range vals {
			got := v.Compare(w)
			switch {
			case i == j && got != 0:
				t.Errorf("%v compare %v = %d, want 0", v, w, got)
			case i < j && got >= 0 && !v.Equal(w):
				t.Errorf("%v compare %v = %d, want < 0", v, w, got)
			case i > j && got <= 0 && !v.Equal(w):
				t.Errorf("%v compare %v = %d, want > 0", v, w, got)
			}
		}
	}
}

// randomValue is a quick.Generator helper producing arbitrary values.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(int64(r.Intn(200) - 100))
	case 3:
		return Float(float64(r.Intn(100)) / 4)
	default:
		letters := []byte("abcdefg")
		n := r.Intn(5)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return Str(string(b))
	}
}

type valuePair struct{ A, B Value }

func (valuePair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valuePair{A: randomValue(r), B: randomValue(r)})
}

func TestValuePropertyCompareSymmetry(t *testing.T) {
	// Compare is antisymmetric and consistent with Equal.
	prop := func(p valuePair) bool {
		c1, c2 := p.A.Compare(p.B), p.B.Compare(p.A)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == p.A.Equal(p.B)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValuePropertyKeyInjective(t *testing.T) {
	prop := func(p valuePair) bool {
		return (p.A.Key() == p.B.Key()) == p.A.Equal(p.B)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	cases := []Value{Bool(true), Int(42), Float(2.5), Str("hello world")}
	for _, v := range cases {
		got, err := ParseValue(v.Kind(), v.String())
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", v.Kind(), v.String(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v → %v", v, got)
		}
	}
}

func TestParseValueEmptyIsNull(t *testing.T) {
	for _, k := range []Kind{KindBool, KindInt, KindFloat, KindString} {
		v, err := ParseValue(k, "")
		if err != nil || !v.IsNull() {
			t.Errorf("ParseValue(%v, \"\") = %v, %v; want null", k, v, err)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue(KindInt, "x"); err == nil {
		t.Error("want error parsing int \"x\"")
	}
	if _, err := ParseValue(KindBool, "maybe"); err == nil {
		t.Error("want error parsing bool \"maybe\"")
	}
	if _, err := ParseValue(KindFloat, "1..2"); err == nil {
		t.Error("want error parsing real \"1..2\"")
	}
}

func TestGuessValue(t *testing.T) {
	if v := GuessValue("42"); v.Kind() != KindInt {
		t.Errorf("GuessValue(42) = %v", v.Kind())
	}
	if v := GuessValue("4.25"); v.Kind() != KindFloat {
		t.Errorf("GuessValue(4.25) = %v", v.Kind())
	}
	if v := GuessValue("true"); v.Kind() != KindBool {
		t.Errorf("GuessValue(true) = %v", v.Kind())
	}
	if v := GuessValue("NYC"); v.Kind() != KindString {
		t.Errorf("GuessValue(NYC) = %v", v.Kind())
	}
	if v := GuessValue(""); !v.IsNull() {
		t.Errorf("GuessValue(\"\") = %v", v)
	}
}

func TestParseKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"int": KindInt, "integer": KindInt, "real": KindFloat, "float": KindFloat,
		"string": KindString, "text": KindString, "bool": KindBool,
	} {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("want error for unknown kind")
	}
}
