package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// insertRandom appends n fresh tuples to the instance — the insert-only
// batch shape the append fast path (Snapshot.applyAppend and
// CodeIndex.applyAppend) exists for. Values mix collision-heavy small
// domains with brand-new ones so dictionaries and group indexes keep
// growing.
func insertRandom(r *rand.Rand, in *Instance, n int, fresh *int) {
	for i := 0; i < n; i++ {
		*fresh++
		in.MustInsert(
			Int(int64(r.Intn(3))), Int(int64(r.Intn(4))), Int(int64(*fresh)),
			Str(fmt.Sprintf("n%d", r.Intn(6))), Str(fmt.Sprintf("s%d", r.Intn(3))),
			Str(fmt.Sprintf("c%d", r.Intn(2))), Str(fmt.Sprintf("z%d", r.Intn(4))),
		)
	}
}

// TestSnapshotApplyAppendChains chains insert-only deltas through
// Snapshot.Apply and asserts (a) every derived snapshot is
// cell-identical to a fresh build, (b) the O(|Δ|) tail-append path
// actually engages — after the first reallocation leaves spare
// capacity, successive appends extend the shared backing array in
// place — and (c) snapshots already handed out never observe rows
// appended behind them.
func TestSnapshotApplyAppendChains(t *testing.T) {
	for _, seed := range []int64{3, 19, 57} {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(40, seed)
		snap := NewSnapshot(in)
		snap.Col(0)
		snap.Col(4)
		frozen := snap            // immutability witness
		frozenLen := frozen.Len() // must never change
		frozenCell := frozen.Value(0, 4)
		fresh := 0
		shared := 0
		for round := 0; round < 30; round++ {
			v0 := snap.Version()
			insertRandom(r, in, 1+r.Intn(8), &fresh)
			entries, ok := in.ChangesSince(v0)
			if !ok {
				t.Fatalf("seed %d round %d: changelog truncated", seed, round)
			}
			prev := snap
			snap = snap.Apply(entries)
			if snap.Stale() {
				t.Fatalf("seed %d round %d: applied snapshot stale", seed, round)
			}
			if len(prev.tuples) > 0 && len(snap.tuples) > 0 && &snap.tuples[0] == &prev.tuples[0] {
				shared++ // in-place tail extension of the shared backing
			}
			assertSnapshotsEqual(t, round, snap, NewSnapshot(in))
		}
		if shared == 0 {
			t.Fatalf("seed %d: append fast path never extended in place over 30 insert-only rounds", seed)
		}
		if frozen.Len() != frozenLen || !frozen.Value(0, 4).Equal(frozenCell) {
			t.Fatalf("seed %d: frozen snapshot mutated by appends behind it", seed)
		}
	}
}

// TestCodeIndexAppendChains drives the migrated group indexes through
// long insert-only chains — deep enough to cross the probe-table grow
// threshold and the fold-back threshold — interleaved with occasional
// delete/update batches (which must fold the appended tail before
// splicing) and occasional oversized batches (which take the rebuild
// branch). Runs under the real hasher and a constant hasher that forces
// every probe into one collision chain; every round must match the
// string-keyed Index oracle.
func TestCodeIndexAppendChains(t *testing.T) {
	posSets := [][]int{{0}, {3, 4}, {1, 2, 5}}
	hashers := map[string]codeHasher{
		"fnv":     hashCodes,
		"collide": func([]uint32) uint64 { return 42 },
	}
	for hname, h := range hashers {
		for _, seed := range []int64{31, 77} {
			t.Run(fmt.Sprintf("%s/seed=%d", hname, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				in := randomInstance(30, seed)
				snap := NewSnapshot(in)
				for _, pos := range posSets {
					cx := buildCodeIndex(snap, pos, h)
					snap.cxMu.Lock()
					if snap.cxCache == nil {
						snap.cxCache = make(map[string]*CodeIndex)
					}
					snap.cxCache[posKey(pos)] = cx
					snap.cxMu.Unlock()
				}
				fresh := 0
				for round := 0; round < 50; round++ {
					v0 := snap.Version()
					switch {
					case round%13 == 12:
						// Oversized batch relative to the base: the append
						// path's rebuild branch.
						insertRandom(r, in, in.Len()/2+8, &fresh)
					case round%7 == 6:
						// Mixed batch: deletes/updates force the appended
						// tail to fold before the splice path runs.
						mutateRandom(r, in, 2+r.Intn(5), &fresh)
					default:
						insertRandom(r, in, 1+r.Intn(12), &fresh)
					}
					entries, ok := in.ChangesSince(v0)
					if !ok {
						t.Fatalf("round %d: changelog truncated", round)
					}
					snap = snap.Apply(entries)
					for _, pos := range posSets {
						cx := snap.CodeIndexOn(pos)
						ix := BuildIndex(in, pos)
						if got, want := codeIndexGroupSets(cx), indexGroupSets(ix); !reflect.DeepEqual(got, want) {
							t.Fatalf("round %d pos %v: groups diverge:\n got %v\nwant %v", round, pos, got, want)
						}
						live := 0
						cx.Groups(1, func([]int32) { live++ })
						if live != ix.Len() {
							t.Fatalf("round %d pos %v: %d live groups, want %d", round, pos, live, ix.Len())
						}
						ids := in.IDs()
						for i := 0; i < 8; i++ {
							tup, _ := in.Tuple(ids[r.Intn(len(ids))])
							if got, want := cx.Lookup(tup), ix.Lookup(tup); !reflect.DeepEqual(got, want) {
								t.Fatalf("round %d pos %v: Lookup(%v) = %v, want %v", round, pos, tup, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestSnapshotOfInsertOnlyAlwaysCatchesUp pins the SnapshotOf change:
// an insert-only delta catches the cached snapshot up through the
// append path even when it is far larger than the catch-up heuristic
// would otherwise allow, and the result is cell-identical to a fresh
// build.
func TestSnapshotOfInsertOnlyAlwaysCatchesUp(t *testing.T) {
	in := randomInstance(20, 5)
	s1 := SnapshotOf(in)
	for p := 0; p < in.Schema().Arity(); p++ {
		s1.Col(p)
	}
	// 10x the base size: way past catchUpWorthwhile, but insert-only.
	fresh := 0
	insertRandom(rand.New(rand.NewSource(8)), in, 200, &fresh)
	s2 := SnapshotOf(in)
	if s2 == s1 || s2.Stale() {
		t.Fatal("SnapshotOf did not return a fresh-versioned snapshot")
	}
	if s2.dicts[0] != s1.dicts[0] {
		t.Fatal("insert-only catch-up rebuilt instead of extending (dictionary not shared)")
	}
	assertSnapshotsEqual(t, 0, s2, NewSnapshot(in))
}
