package relation

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardedDB partitions a Database horizontally: every relation exists in
// every shard, each shard holding the tuples the Partitioner hashes to
// it, as an ordinary Instance with its own version counter, changelog,
// snapshot cache and group indexes. TIDs are allocated globally (the
// ShardedDB owns the per-relation counter) and stored sparsely in the
// shard instances, so a tuple keeps its identity no matter which shard
// it lives on — the invariant that makes sharded detection output
// byte-identical to the single-partition engine.
//
// Like Instance and Database it is single-writer: all mutation flows
// through a Routing (route phase, sequential) followed by ApplyShard
// calls (apply phase, parallel across shards, each shard applied by at
// most one goroutine). Readers work off per-shard DBSnapshots, which
// remain immutable under concurrent writes.
type ShardedDB struct {
	part    *Partitioner
	shards  []*Database
	schemas map[string]*Schema
	nextID  map[string]TID
	// dir maps every live tuple to its shard. It is maintained by the
	// route phase (not apply), so routing later ops of the same batch
	// sees moves already performed by earlier ones.
	dir map[string]map[TID]int
}

// NewShardedDB returns an empty sharded database cut by the partitioner.
func NewShardedDB(p *Partitioner) *ShardedDB {
	shards := make([]*Database, p.Shards())
	for i := range shards {
		shards[i] = NewDatabase()
	}
	return &ShardedDB{
		part:    p,
		shards:  shards,
		schemas: make(map[string]*Schema),
		nextID:  make(map[string]TID),
		dir:     make(map[string]map[TID]int),
	}
}

// Partition builds a ShardedDB from an existing database: every
// instance is cut across the partitioner's shards with AddInstance.
func Partition(db *Database, p *Partitioner) (*ShardedDB, error) {
	s := NewShardedDB(p)
	for _, name := range db.Names() {
		if err := s.AddInstance(db.MustInstance(name)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Partitioner returns the partitioner the database was cut by.
func (s *ShardedDB) Partitioner() *Partitioner { return s.part }

// Shards returns the shard count.
func (s *ShardedDB) Shards() int { return len(s.shards) }

// Shard returns shard i's database. Every relation of the ShardedDB is
// present (possibly empty) in every shard.
func (s *ShardedDB) Shard(i int) *Database { return s.shards[i] }

// Schema returns the schema of the named relation.
func (s *ShardedDB) Schema(name string) (*Schema, bool) {
	sch, ok := s.schemas[name]
	return sch, ok
}

// Names returns the relation names in sorted order.
func (s *ShardedDB) Names() []string { return s.shards[0].Names() }

// Size returns the total number of tuples across all relations and
// shards.
func (s *ShardedDB) Size() int {
	n := 0
	for _, db := range s.shards {
		n += db.Size()
	}
	return n
}

// ShardOfTID returns the shard currently holding the tuple.
func (s *ShardedDB) ShardOfTID(rel string, id TID) (int, bool) {
	shard, ok := s.dir[rel][id]
	return shard, ok
}

// AddInstance partitions an existing instance across the shards,
// preserving TIDs and cell weights, and registers the relation in every
// shard (a shard with no tuples still gets an empty instance, so
// per-shard snapshots cover the full relation set). Tuples of the
// source instance are copied; it is not retained.
func (s *ShardedDB) AddInstance(in *Instance) error {
	name := in.Schema().Name()
	s.schemas[name] = in.Schema()
	insts := make([]*Instance, len(s.shards))
	for i, db := range s.shards {
		si := NewInstance(in.Schema())
		db.Add(si)
		insts[i] = si
	}
	dir := make(map[TID]int, in.Len())
	s.dir[name] = dir
	for _, id := range in.IDs() {
		t, _ := in.Tuple(id)
		shard := s.part.ShardOf(name, t)
		// insertShared: the source instance owns the tuple and replaces
		// on update (copy-on-write), so replicas alias its storage — a
		// partition must not double the tuple heap.
		if err := insts[shard].insertShared(id, t); err != nil {
			return fmt.Errorf("relation: partitioning %s: %w", name, err)
		}
		if ws, ok := in.weights[id]; ok {
			insts[shard].weights[id] = append([]float64(nil), ws...)
		}
		dir[id] = shard
	}
	if s.nextID[name] < in.nextID {
		s.nextID[name] = in.nextID
	}
	return nil
}

// NextTID returns the TID the next routed insert into the relation
// would allocate. Single-writer like all mutation state: read it from
// the sequencer (the goroutine that creates Routings).
func (s *ShardedDB) NextTID(rel string) TID { return s.nextID[rel] }

// NextTIDs captures every relation's TID allocator position. Together
// with RebuildDir it lets the sequencer undo a Routing that was never
// applied (a commit whose log append failed): restoring the counters
// keeps TID allocation identical to a recovery replay that never saw
// the rejected batch. Single-writer, like NextTID.
func (s *ShardedDB) NextTIDs() map[string]TID {
	out := make(map[string]TID, len(s.nextID))
	for rel, id := range s.nextID {
		out[rel] = id
	}
	return out
}

// SetNextTIDs restores allocator positions captured by NextTIDs.
func (s *ShardedDB) SetNextTIDs(m map[string]TID) {
	s.nextID = make(map[string]TID, len(m))
	for rel, id := range m {
		s.nextID[rel] = id
	}
}

// RebuildDir reconstructs the tuple directory by scanning every shard —
// the recovery step after a partially-applied sub-batch left the routed
// directory ahead of (or behind) what the shards actually hold. A TID
// found in more than one shard (a cross-shard move whose insert applied
// but whose delete did not, because that writer failed mid-commit) is
// repaired on the spot: the lowest shard's copy is kept and the others
// deleted — through Instance.Delete, so the monitor's next sync sees
// the repair — restoring a valid (if partial) partition.
func (s *ShardedDB) RebuildDir() {
	for rel := range s.schemas {
		dir := make(map[TID]int)
		for shard, db := range s.shards {
			if in, ok := db.Instance(rel); ok {
				for _, id := range in.IDs() {
					if _, dup := dir[id]; dup {
						in.Delete(id)
						continue
					}
					dir[id] = shard
				}
			}
		}
		s.dir[rel] = dir
	}
}

// SetChangelogCap sets the changelog cap on every instance of every
// shard. Per-shard tuning (a hot shard sizing its log for its own write
// rate) goes through Shard(i) directly.
func (s *ShardedDB) SetChangelogCap(n int) {
	for _, db := range s.shards {
		for _, name := range db.Names() {
			db.MustInstance(name).SetChangelogCap(n)
		}
	}
}

// Snapshots freezes every shard (via DBSnapshotOf, so unchanged shards
// reuse their cached snapshots) and returns one DBSnapshot per shard.
// Shards catch up concurrently, bounded by GOMAXPROCS: each shard is a
// disjoint Database, so the per-shard snapshot builds (column interning,
// changelog catch-up, index splicing) share nothing. Writers must be
// quiescent, as for any snapshot build — the usual single-writer
// barrier the sequencer already provides.
func (s *ShardedDB) Snapshots() []*DBSnapshot {
	out := make([]*DBSnapshot, len(s.shards))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		for i, db := range s.shards {
			out[i] = DBSnapshotOf(db)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				out[i] = DBSnapshotOf(s.shards[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// ShardedOp is one physical operation routed to a single shard. A
// logical update that changes a partition-key attribute routes as two
// ShardedOps: a delete on the old shard and an insert (carrying the
// updated tuple and the cell weights) on the new one.
type ShardedOp struct {
	Shard   int
	Rel     string
	Kind    ChangeOp
	TID     TID
	Pos     int   // ChangeUpdate: attribute position
	Val     Value // ChangeUpdate: new value
	Tuple   Tuple // ChangeInsert: full tuple
	weights []float64
}

// Routing plans one commit batch against the sharded database. Ops are
// routed sequentially — validation, TID allocation, directory updates
// and cross-shard move decisions all happen here, against a same-batch
// overlay so a later op sees tuples inserted or updated by an earlier
// one — producing per-shard sub-batches whose application (in order
// within a shard, concurrently across shards) is equivalent to applying
// the original batch sequentially against one partition.
//
// Routing mutates the directory and TID counters eagerly, so a routed
// batch MUST be applied (ApplyShard on every non-empty sub-batch)
// before the next Routing is created; route-then-apply are the two
// phases of one single-writer commit.
type Routing struct {
	s        *ShardedDB
	perShard [][]ShardedOp
	over     map[string]map[TID]Tuple
	pend     map[string]map[TID][]cellPatch
	moves    int
}

// cellPatch is a deferred single-cell update: a non-key Update routes
// the raw (pos, value) pair and records a patch instead of cloning the
// whole tuple; tupleOf composes the patches lazily iff a later op in
// the same batch actually needs the tuple's current value.
type cellPatch struct {
	pos int
	val Value
}

// NewRouting starts planning a commit batch.
func (s *ShardedDB) NewRouting() *Routing {
	return &Routing{
		s:        s,
		perShard: make([][]ShardedOp, len(s.shards)),
		over:     make(map[string]map[TID]Tuple),
		pend:     make(map[string]map[TID][]cellPatch),
	}
}

// PerShard returns the routed sub-batches, indexed by shard. Shards the
// batch never touched have nil slices.
func (r *Routing) PerShard() [][]ShardedOp { return r.perShard }

// Moves returns the number of cross-shard moves routed so far: updates
// whose new partition key hashed to a different shard, re-homing the
// tuple. Callers maintaining per-shard attributions (the serve layer's
// violation counts) use this to detect that placements shifted without
// any violation necessarily changing.
func (r *Routing) Moves() int { return r.moves }

// Ops returns the total number of physical ops routed so far.
func (r *Routing) Ops() int {
	n := 0
	for _, ops := range r.perShard {
		n += len(ops)
	}
	return n
}

func (r *Routing) push(shard int, op ShardedOp) {
	op.Shard = shard
	r.perShard[shard] = append(r.perShard[shard], op)
}

// anyInstance returns a representative instance of the relation (all
// shards share the schema; shard 0's copy serves for validation).
func (r *Routing) anyInstance(rel string) *Instance {
	return r.s.shards[0].MustInstance(rel)
}

// tupleOf resolves the current value of a live tuple: the same-batch
// overlay first, then the owning shard's instance, with any deferred
// single-cell patches composed on top (and folded into the overlay, so
// repeated reads pay the clone once).
func (r *Routing) tupleOf(rel string, id TID, shard int) (Tuple, error) {
	t, ok := r.over[rel][id]
	if !ok {
		t, ok = r.s.shards[shard].MustInstance(rel).Tuple(id)
		if !ok {
			return nil, fmt.Errorf("relation: sharded %s: directory has tuple %d but shard %d does not (unapplied routing?)", rel, id, shard)
		}
	}
	if ps := r.pend[rel][id]; len(ps) > 0 {
		t = t.Clone()
		for _, p := range ps {
			t[p.pos] = p.val
		}
		r.setOver(rel, id, t)
		delete(r.pend[rel], id)
	}
	return t, nil
}

func (r *Routing) setOver(rel string, id TID, t Tuple) {
	m, ok := r.over[rel]
	if !ok {
		m = make(map[TID]Tuple)
		r.over[rel] = m
	}
	m[id] = t
}

// Insert routes a tuple insert: validates it exactly like
// Instance.Insert, allocates the next global TID, and assigns the
// tuple's shard.
func (r *Routing) Insert(rel string, t Tuple) (TID, error) {
	if err := r.anyInstance(rel).CheckTuple(t); err != nil {
		return 0, err
	}
	id := r.s.nextID[rel]
	r.s.nextID[rel] = id + 1
	shard := r.s.part.ShardOf(rel, t)
	r.s.dir[rel][id] = shard
	r.setOver(rel, id, t)
	r.push(shard, ShardedOp{Rel: rel, Kind: ChangeInsert, TID: id, Pos: -1, Tuple: t})
	return id, nil
}

// Delete routes a tuple delete; like Instance.Delete it reports whether
// the tuple existed and is a no-op otherwise.
func (r *Routing) Delete(rel string, id TID) bool {
	shard, ok := r.s.dir[rel][id]
	if !ok {
		return false
	}
	delete(r.s.dir[rel], id)
	if m, ok := r.over[rel]; ok {
		delete(m, id)
	}
	if m, ok := r.pend[rel]; ok {
		delete(m, id)
	}
	r.push(shard, ShardedOp{Rel: rel, Kind: ChangeDelete, TID: id, Pos: -1})
	return true
}

// Update routes a single-cell update. When the new value moves the
// tuple's partition key to a different shard, the update becomes a
// delete on the old shard plus an insert (same TID, updated tuple,
// weights carried along) on the new one.
func (r *Routing) Update(rel string, id TID, pos int, v Value) error {
	shard, ok := r.s.dir[rel][id]
	if !ok {
		return fmt.Errorf("relation: %s: no tuple %d", rel, id)
	}
	in := r.anyInstance(rel)
	if pos < 0 || pos >= in.Schema().Arity() {
		return fmt.Errorf("relation: %s: position %d out of range (arity %d)",
			rel, pos, in.Schema().Arity())
	}
	if !in.Schema().Attr(pos).Domain.Contains(v) {
		return fmt.Errorf("relation: %s: value %v not in dom(%s)", rel, v, in.Schema().Attr(pos).Name)
	}
	if !r.s.part.KeyTouches(rel, pos) {
		// The partition key is untouched, so the tuple cannot move:
		// route the raw single-cell update and defer composition to a
		// cellPatch — the hot path never clones the tuple.
		m, ok := r.pend[rel]
		if !ok {
			m = make(map[TID][]cellPatch)
			r.pend[rel] = m
		}
		m[id] = append(m[id], cellPatch{pos: pos, val: v})
		r.push(shard, ShardedOp{Rel: rel, Kind: ChangeUpdate, TID: id, Pos: pos, Val: v})
		return nil
	}
	cur, err := r.tupleOf(rel, id, shard)
	if err != nil {
		return err
	}
	nt := cur.Clone()
	nt[pos] = v
	r.setOver(rel, id, nt)
	newShard := r.s.part.ShardOf(rel, nt)
	if newShard == shard {
		r.push(shard, ShardedOp{Rel: rel, Kind: ChangeUpdate, TID: id, Pos: pos, Val: v})
		return nil
	}
	// Cross-shard move. Weights live only on the owning shard's
	// instance; copy them at route time (the apply phase runs shards
	// concurrently, so the insert on the new shard must not read the old
	// shard's instance).
	var ws []float64
	if old, ok := r.s.shards[shard].MustInstance(rel).weights[id]; ok {
		ws = append([]float64(nil), old...)
	}
	r.s.dir[rel][id] = newShard
	r.moves++
	r.push(shard, ShardedOp{Rel: rel, Kind: ChangeDelete, TID: id, Pos: -1})
	r.push(newShard, ShardedOp{Rel: rel, Kind: ChangeInsert, TID: id, Pos: -1, Tuple: nt, weights: ws})
	return nil
}

// ApplyShard applies one shard's routed sub-batch, in order. Sub-batches
// of distinct shards touch disjoint instances and may be applied
// concurrently (one goroutine per shard). Ops were fully validated at
// route time, so an error here means the routing invariants broke (a
// poisoned batch, a directory out of step with a shard): ApplyShard
// stops at the failing op and returns the error instead of killing the
// process, leaving the caller to degrade — reject the commit, rebuild
// the directory (RebuildDir) and resynchronize via the monitor's
// changelog-driven Sync.
func (s *ShardedDB) ApplyShard(shard int, ops []ShardedOp) error {
	db := s.shards[shard]
	for _, op := range ops {
		in, ok := db.Instance(op.Rel)
		if !ok {
			return fmt.Errorf("relation: sharded apply: shard %d has no relation %q", shard, op.Rel)
		}
		switch op.Kind {
		case ChangeInsert:
			if err := in.InsertWithTID(op.TID, op.Tuple); err != nil {
				return fmt.Errorf("relation: sharded apply: %w", err)
			}
			if op.weights != nil {
				in.weights[op.TID] = op.weights
			}
		case ChangeDelete:
			in.Delete(op.TID)
		case ChangeUpdate:
			if err := in.Update(op.TID, op.Pos, op.Val); err != nil {
				return fmt.Errorf("relation: sharded apply: %w", err)
			}
		}
	}
	return nil
}

// Apply applies every routed sub-batch sequentially (shard order),
// stopping at the first shard whose application fails. The concurrent
// path is ApplyShard per shard; Apply is the convenience for callers
// without their own workers.
func (s *ShardedDB) Apply(r *Routing) error {
	for shard, ops := range r.perShard {
		if len(ops) > 0 {
			if err := s.ApplyShard(shard, ops); err != nil {
				return err
			}
		}
	}
	return nil
}

// GatherSnapshots merges per-shard snapshots back into one Database:
// for every relation, the union of all shards' frozen tuples under
// their global TIDs. The result is detached — mutating it affects
// neither the snapshots nor the sharded database — and is what
// cross-partition readers (the /check endpoint) run the ordinary
// engine on.
// An error (two shards claiming one TID — shard state diverged from the
// routing invariants) aborts the gather rather than killing the server.
func GatherSnapshots(snaps []*DBSnapshot) (*Database, error) {
	return GatherSnapshotsCtx(context.Background(), snaps)
}

// gatherCheckEvery is how many gathered rows pass between context
// checks: cheap enough to keep cancellation latency in the tens of
// microseconds without a per-row atomic load.
const gatherCheckEvery = 4096

// GatherSnapshotsCtx is GatherSnapshots under a deadline: a gather over
// large shards is O(total rows), so request-scoped readers pass their
// context and a cancelled request stops copying instead of finishing a
// merge nobody will read.
func GatherSnapshotsCtx(ctx context.Context, snaps []*DBSnapshot) (*Database, error) {
	db := NewDatabase()
	if len(snaps) == 0 {
		return db, nil
	}
	rows := 0
	for _, name := range snaps[0].Names() {
		first, _ := snaps[0].Snapshot(name)
		in := NewInstance(first.Schema())
		db.Add(in)
		for _, ds := range snaps {
			snap, ok := ds.Snapshot(name)
			if !ok {
				continue
			}
			for row := 0; row < snap.Len(); row++ {
				if rows%gatherCheckEvery == 0 {
					if err := ctx.Err(); err != nil {
						return nil, fmt.Errorf("relation: gather %s: %w", name, err)
					}
				}
				rows++
				if err := in.InsertWithTID(snap.TID(row), snap.TupleAt(row)); err != nil {
					return nil, fmt.Errorf("relation: gather %s: %w", name, err)
				}
			}
		}
	}
	return db, nil
}
