package relation

import (
	"fmt"
	"testing"
)

// shardedFixture partitions a two-attribute relation keyed on attribute
// 0 across the given number of shards.
func shardedFixture(t *testing.T, shards int, rows ...Tuple) (*ShardedDB, *Instance) {
	t.Helper()
	sch := MustSchema("r", Attr("k", KindString), Attr("v", KindString))
	in := NewInstance(sch)
	for _, row := range rows {
		if _, err := in.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	db := NewDatabase()
	db.Add(in)
	p := NewPartitioner(shards)
	p.SetKey("r", []int{0})
	sdb, err := Partition(db, p)
	if err != nil {
		t.Fatal(err)
	}
	return sdb, in
}

// applyAll routes nothing further; it just applies every routed
// sub-batch, like one sequencer commit.
func applyAll(s *ShardedDB, r *Routing) {
	for shard, ops := range r.PerShard() {
		if len(ops) > 0 {
			if err := s.ApplyShard(shard, ops); err != nil {
				panic(err)
			}
		}
	}
}

func shardTuple(t *testing.T, s *ShardedDB, id TID) (int, Tuple) {
	t.Helper()
	shard, ok := s.ShardOfTID("r", id)
	if !ok {
		t.Fatalf("tuple %d not in directory", id)
	}
	tu, ok := s.Shard(shard).MustInstance("r").Tuple(id)
	if !ok {
		t.Fatalf("directory says shard %d but tuple %d is not there", shard, id)
	}
	return shard, tu
}

// TestRoutingComposesDeferredUpdatesAcrossMove is the regression test
// for the non-key fast path: a batch that updates a non-key cell and
// THEN rewrites the key of the same tuple must carry the composed
// value through the cross-shard move, even though the non-key update
// was routed without materializing the tuple.
func TestRoutingComposesDeferredUpdatesAcrossMove(t *testing.T) {
	s, _ := shardedFixture(t, 4, Tuple{Str("alpha"), Str("old")})
	oldShard, _ := shardTuple(t, s, 0)

	// Pick a replacement key that actually changes the shard.
	newKey := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("beta%d", i)
		if s.Partitioner().ShardOf("r", Tuple{Str(k), Str("x")}) != oldShard {
			newKey = k
			break
		}
	}

	r := s.NewRouting()
	if err := r.Update("r", 0, 1, Str("new")); err != nil { // non-key: fast path
		t.Fatal(err)
	}
	if r.Moves() != 0 {
		t.Fatalf("non-key update counted as a move")
	}
	if err := r.Update("r", 0, 0, Str(newKey)); err != nil { // key: move
		t.Fatal(err)
	}
	if r.Moves() != 1 {
		t.Fatalf("Moves = %d, want 1", r.Moves())
	}
	applyAll(s, r)

	gotShard, tu := shardTuple(t, s, 0)
	if gotShard == oldShard {
		t.Fatalf("tuple did not move off shard %d", oldShard)
	}
	if want := (Tuple{Str(newKey), Str("new")}); !tu[0].Equal(want[0]) || !tu[1].Equal(want[1]) {
		t.Fatalf("moved tuple = %v, want %v (deferred non-key update lost?)", tu, want)
	}
	if old, ok := s.Shard(oldShard).MustInstance("r").Tuple(0); ok {
		t.Fatalf("old shard still holds %v", old)
	}
}

// TestRoutingComposesInsertThenUpdates covers the same-batch chain
// insert → non-key update → key update: the move must start from the
// inserted tuple with the patch applied, not from any instance state
// (the insert has not been applied yet while routing).
func TestRoutingComposesInsertThenUpdates(t *testing.T) {
	s, _ := shardedFixture(t, 4)

	r := s.NewRouting()
	id, err := r.Insert("r", Tuple{Str("alpha"), Str("v0")})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Update("r", id, 1, Str("v1")); err != nil {
		t.Fatal(err)
	}
	insShard, _ := s.ShardOfTID("r", id)
	newKey := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("gamma%d", i)
		if s.Partitioner().ShardOf("r", Tuple{Str(k), Str("x")}) != insShard {
			newKey = k
			break
		}
	}
	if err := r.Update("r", id, 0, Str(newKey)); err != nil {
		t.Fatal(err)
	}
	applyAll(s, r)

	_, tu := shardTuple(t, s, id)
	if !tu[0].Equal(Str(newKey)) || !tu[1].Equal(Str("v1")) {
		t.Fatalf("tuple = %v, want [%s v1]", tu, newKey)
	}
}

// TestRoutingDeleteDropsDeferredPatches makes sure a delete forgets
// pending patches: re-inserting under the same TID later in the batch
// must not resurrect them.
func TestRoutingDeleteDropsDeferredPatches(t *testing.T) {
	s, _ := shardedFixture(t, 4, Tuple{Str("alpha"), Str("old")})

	r := s.NewRouting()
	if err := r.Update("r", 0, 1, Str("patched")); err != nil {
		t.Fatal(err)
	}
	if !r.Delete("r", 0) {
		t.Fatal("delete of live tuple reported missing")
	}
	applyAll(s, r)
	if _, ok := s.ShardOfTID("r", 0); ok {
		t.Fatal("deleted tuple still in directory")
	}

	// A fresh routed insert must see clean state.
	r2 := s.NewRouting()
	id, err := r2.Insert("r", Tuple{Str("alpha"), Str("fresh")})
	if err != nil {
		t.Fatal(err)
	}
	applyAll(s, r2)
	_, tu := shardTuple(t, s, id)
	if !tu[1].Equal(Str("fresh")) {
		t.Fatalf("tuple = %v, want fresh", tu)
	}
}

// TestRoutingMatchesFlatApplication routes a mixed batch and checks
// the union of the shards equals the same batch applied to a flat
// instance, tuple for tuple.
func TestRoutingMatchesFlatApplication(t *testing.T) {
	rows := make([]Tuple, 0, 8)
	for i := 0; i < 8; i++ {
		rows = append(rows, Tuple{Str(fmt.Sprintf("k%d", i)), Str(fmt.Sprintf("v%d", i))})
	}
	s, _ := shardedFixture(t, 3, rows...)

	flat := NewInstance(MustSchema("r", Attr("k", KindString), Attr("v", KindString)))
	for _, row := range rows {
		flat.MustInsert(row...)
	}

	r := s.NewRouting()
	step := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	step(r.Update("r", 2, 1, Str("v2b")))  // fast path
	step(r.Update("r", 2, 0, Str("k2b")))  // possible move, composed
	step(r.Update("r", 5, 1, Str("v5b")))  // fast path only
	r.Delete("r", 7)
	id, err := r.Insert("r", Tuple{Str("k8"), Str("v8")})
	step(err)
	step(r.Update("r", id, 1, Str("v8b")))
	applyAll(s, r)

	step(flat.Update(2, 1, Str("v2b")))
	step(flat.Update(2, 0, Str("k2b")))
	step(flat.Update(5, 1, Str("v5b")))
	flat.Delete(7)
	fid, err := flat.Insert(Tuple{Str("k8"), Str("v8")})
	step(err)
	if fid != id {
		t.Fatalf("TID divergence: sharded %d flat %d", id, fid)
	}
	step(flat.Update(id, 1, Str("v8b")))

	if got, want := s.Size(), flat.Len(); got != want {
		t.Fatalf("size %d, want %d", got, want)
	}
	for _, fid := range flat.IDs() {
		want, _ := flat.Tuple(fid)
		_, got := shardTuple(t, s, fid)
		for p := range want {
			if !got[p].Equal(want[p]) {
				t.Fatalf("tuple %d = %v, want %v", fid, got, want)
			}
		}
	}
}
