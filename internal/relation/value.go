// Package relation implements the relational substrate the dependency
// framework is built on: typed values, domains, schemas, tuples, instances
// and databases, together with CSV import/export and hash indexes.
//
// The design follows Section 2 of Fan (PODS 2008): every attribute has an
// explicit domain dom(A), and whether that domain is finite matters for the
// static analyses of conditional dependencies (Example 4.1 of the paper).
// Instances additionally carry optional per-cell confidence weights, used by
// the Section 5.1 repair cost metric.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero Kind so that the zero
// Value is a null.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the lower-case name of the kind, matching the type names
// used in CSV headers and dependency files ("int", "string", ...).
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "real"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a type name into a Kind. It accepts the names emitted
// by Kind.String plus the common aliases "float", "double", "text", "str".
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "bool", "boolean":
		return KindBool, nil
	case "int", "integer":
		return KindInt, nil
	case "real", "float", "double":
		return KindFloat, nil
	case "string", "str", "text":
		return KindString, nil
	case "null":
		return KindNull, nil
	default:
		return KindNull, fmt.Errorf("relation: unknown type %q", s)
	}
}

// Value is an immutable typed database value. The zero Value is SQL-style
// null. Values are comparable with Equal and ordered with Compare; integers
// and floats compare numerically across kinds.
type Value struct {
	kind Kind
	i    int64   // bool (0/1) and int payload
	f    float64 // float payload
	s    string  // string payload
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a real (floating point) value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value. The name Str avoids clashing with the
// fmt.Stringer method.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// BoolVal returns the boolean payload; it is false unless Kind is KindBool.
func (v Value) BoolVal() bool { return v.kind == KindBool && v.i != 0 }

// IntVal returns the integer payload; it is 0 unless Kind is KindInt.
func (v Value) IntVal() int64 {
	if v.kind == KindInt {
		return v.i
	}
	return 0
}

// FloatVal returns the numeric payload as a float64 for KindInt and
// KindFloat values, and 0 otherwise.
func (v Value) FloatVal() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		return 0
	}
}

// StrVal returns the string payload; it is "" unless Kind is KindString.
func (v Value) StrVal() string {
	if v.kind == KindString {
		return v.s
	}
	return ""
}

// numeric reports whether v holds a number.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are equal. Nulls equal only nulls;
// numeric values compare numerically across int/float kinds.
func (v Value) Equal(w Value) bool {
	if v.kind == w.kind {
		switch v.kind {
		case KindNull:
			return true
		case KindBool, KindInt:
			return v.i == w.i
		case KindFloat:
			return v.f == w.f
		case KindString:
			return v.s == w.s
		}
	}
	if v.numeric() && w.numeric() {
		return v.FloatVal() == w.FloatVal()
	}
	return false
}

// Compare orders values: null < bool < numbers < strings, with numbers
// compared numerically across kinds. It returns -1, 0 or +1.
func (v Value) Compare(w Value) int {
	vr, wr := v.rank(), w.rank()
	if vr != wr {
		if vr < wr {
			return -1
		}
		return 1
	}
	switch {
	case v.kind == KindNull:
		return 0
	case v.kind == KindBool:
		return cmpInt64(v.i, w.i)
	case v.numeric():
		a, b := v.FloatVal(), w.FloatVal()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(v.s, w.s)
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// rank buckets kinds for cross-kind ordering.
func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

// Less reports whether v orders strictly before w.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// Key returns a string that is equal for two values iff they are Equal.
// It is used as a map key when grouping tuples.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00n"
	case KindBool:
		if v.i != 0 {
			return "\x00t"
		}
		return "\x00f"
	case KindInt:
		return "\x00i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		f := v.f
		if f == float64(int64(f)) {
			// Integral floats share keys with the equal integer value.
			return "\x00i" + strconv.FormatInt(int64(f), 10)
		}
		return "\x00r" + strconv.FormatFloat(f, 'g', -1, 64)
	default:
		return "\x00s" + v.s
	}
}

// AppendKey appends Key(v) to b and returns the extended slice — the
// allocation-free form probe loops use to build projection keys into a
// reused buffer instead of materializing a string per value.
func (v Value) AppendKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, "\x00n"...)
	case KindBool:
		if v.i != 0 {
			return append(b, "\x00t"...)
		}
		return append(b, "\x00f"...)
	case KindInt:
		return strconv.AppendInt(append(b, "\x00i"...), v.i, 10)
	case KindFloat:
		f := v.f
		if f == float64(int64(f)) {
			// Integral floats share keys with the equal integer value.
			return strconv.AppendInt(append(b, "\x00i"...), int64(f), 10)
		}
		return strconv.AppendFloat(append(b, "\x00r"...), f, 'g', -1, 64)
	default:
		return append(append(b, "\x00s"...), v.s...)
	}
}

// String renders the value for display. Strings render verbatim; null
// renders as "⊥".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "⊥"
	case KindBool:
		return strconv.FormatBool(v.i != 0)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return v.s
	}
}

// ParseValue parses text into a value of the given kind. Empty text parses
// to null for every kind.
func ParseValue(kind Kind, text string) (Value, error) {
	if text == "" {
		return Null(), nil
	}
	switch kind {
	case KindBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse bool %q: %v", text, err)
		}
		return Bool(b), nil
	case KindInt:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse int %q: %v", text, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse real %q: %v", text, err)
		}
		return Float(f), nil
	case KindString:
		return Str(text), nil
	case KindNull:
		return Null(), nil
	default:
		return Value{}, fmt.Errorf("relation: parse value of unknown kind %v", kind)
	}
}

// GuessValue parses text into the most specific kind that accepts it:
// int, then float, then bool, then string.
func GuessValue(text string) Value {
	if text == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return Float(f)
	}
	if b, err := strconv.ParseBool(text); err == nil {
		return Bool(b)
	}
	return Str(text)
}
