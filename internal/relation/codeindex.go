package relation

import (
	"sort"
	"sync/atomic"
)

// CodeIndex is the columnar counterpart of Index: a hash index over a
// list of attribute positions of a Snapshot, grouping rows that share a
// projection. Where Index materializes one heap string per tuple and
// buckets in a map[string][]TID, CodeIndex hashes the fixed-width code
// sequence of each row to a uint64 and groups rows through a flat
// open-addressing table into a single shared arena — a handful of
// pointer-free arrays instead of hundreds of thousands of heap strings
// and per-bucket slices. Hash collisions are verified, never trusted:
// rows join a group only if their code sequences are actually equal.
//
// It offers the same contract as Index — Groups / GroupsWhile iteration
// with a minimum group size and early termination, plus Lookup —
// except that groups are handed out as dense row indexes (ascending, so
// rows[0] is the lowest-TID representative); Snapshot.TID converts back.
type CodeIndex struct {
	snap *Snapshot
	pos  []int
	hash codeHasher
	// Groups are spans of one arena: group g holds the rows
	// arena[starts[g]:starts[g+1]], ascending. rowGroup inverts the
	// mapping; table is the open-addressing probe table (slot = group
	// ordinal + 1, 0 = empty) kept for Lookup.
	arena    []int32
	starts   []int32
	rowGroup []int32
	table    []int32
	mask     uint64

	// Append absorption (applyAppend): rows appended to the snapshot
	// since the arena was last laid out live in extra (group ordinal ->
	// appended member rows, ascending) instead of the arena; ngroups
	// counts every group, including ones that exist only in extra and
	// therefore lie beyond starts. nExtra is the total appended-row
	// count — once it stops being small relative to the snapshot the
	// index folds back into a flat arena (fold). extend arbitrates
	// in-place tail extension of rowGroup and the extra member slices,
	// exactly like Snapshot.extend does for columns.
	extra   map[int32][]int32
	nExtra  int
	ngroups int
	extend  *atomic.Bool
}

// codeHasher hashes a projected code sequence; injectable so tests can
// force probe collisions and exercise the verification path.
type codeHasher func(codes []uint32) uint64

// FNV-1a 64-bit parameters; each 32-bit code is folded in as four bytes.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashCodes is the production hasher: FNV-1a over the bytes of the code
// sequence.
func hashCodes(codes []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range codes {
		h = (h ^ uint64(c&0xff)) * fnvPrime64
		h = (h ^ uint64((c>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((c>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(c>>24)) * fnvPrime64
	}
	return h
}

// testHasher, when non-nil, replaces the production hasher in every
// index BuildCodeIndex builds afterwards (spliced derivatives inherit
// it). See SetCodeHasherForTest.
var testHasher codeHasher

// SetCodeHasherForTest overrides the code hasher — equivalence tests
// outside this package use a constant hasher to force every probe into
// one collision chain and exercise the verification path. It returns a
// restore func and must not be called concurrently with index builds;
// test-only.
func SetCodeHasherForTest(h func(codes []uint32) uint64) (restore func()) {
	prev := testHasher
	testHasher = h
	return func() { testHasher = prev }
}

// BuildCodeIndex builds a code index of the snapshot on the given
// attribute positions, interning the touched columns if needed.
func BuildCodeIndex(snap *Snapshot, pos []int) *CodeIndex {
	if testHasher != nil {
		return buildCodeIndex(snap, pos, testHasher)
	}
	return buildCodeIndex(snap, pos, hashCodes)
}

func buildCodeIndex(snap *Snapshot, pos []int, hash codeHasher) *CodeIndex {
	n := snap.Len()
	cx := &CodeIndex{
		snap:   snap,
		pos:    append([]int(nil), pos...),
		hash:   hash,
		extend: new(atomic.Bool),
	}
	cols := make([][]uint32, len(cx.pos))
	for i, p := range cx.pos {
		cols[i] = snap.Col(p) // interns the column on first touch
	}
	if n == 0 {
		cx.starts = []int32{0}
		return cx
	}
	// Probe table at load factor <= 1/2, power-of-two sized.
	size := uint64(16)
	for size < uint64(n)*2 {
		size *= 2
	}
	cx.table = make([]int32, size)
	cx.mask = size - 1
	cx.rowGroup = make([]int32, n)
	var reps []int32   // group ordinal -> first (representative) row
	var counts []int32 // group ordinal -> member count
	codes := make([]uint32, len(cx.pos))
	for row := 0; row < n; row++ {
		for i := range cols {
			codes[i] = cols[i][row]
		}
		idx := hash(codes) & cx.mask
		for {
			e := cx.table[idx]
			if e == 0 {
				gi := int32(len(reps))
				cx.table[idx] = gi + 1
				reps = append(reps, int32(row))
				counts = append(counts, 1)
				cx.rowGroup[row] = gi
				break
			}
			gi := e - 1
			rep := reps[gi]
			same := true
			for i := range cols {
				if cols[i][rep] != codes[i] {
					same = false
					break
				}
			}
			if same {
				cx.rowGroup[row] = gi
				counts[gi]++
				break
			}
			idx = (idx + 1) & cx.mask
		}
	}
	// Lay the groups out contiguously: prefix-sum the counts into span
	// starts, then fill the arena in row order (groups stay ascending).
	g := len(reps)
	cx.ngroups = g
	cx.starts = make([]int32, g+1)
	for i, c := range counts {
		cx.starts[i+1] = cx.starts[i] + c
	}
	cur := counts // reuse as fill cursors
	copy(cur, cx.starts[:g])
	cx.arena = make([]int32, n)
	for row := 0; row < n; row++ {
		gi := cx.rowGroup[row]
		cx.arena[cur[gi]] = int32(row)
		cur[gi]++
	}
	return cx
}

// group returns the member rows of group ordinal gi: its arena span
// when it has one, merged with any rows appended since the last arena
// layout. With no appended rows (the steady state after fold) this is
// a pure slice of the arena; a group with both an arena span and an
// extra tail pays one merge copy, preserving the ascending invariant
// because appended rows carry the highest indexes.
func (cx *CodeIndex) group(gi int32) []int32 {
	var base []int32
	if int(gi)+1 < len(cx.starts) {
		base = cx.arena[cx.starts[gi]:cx.starts[gi+1]]
	}
	if cx.nExtra == 0 {
		return base
	}
	ext := cx.extra[gi]
	if len(ext) == 0 {
		return base
	}
	if len(base) == 0 {
		return ext
	}
	out := make([]int32, 0, len(base)+len(ext))
	out = append(out, base...)
	return append(out, ext...)
}

// Groups invokes fn for every group with at least minSize members. Rows
// within a group ascend (so rows[0] has the lowest TID); groups iterate
// in first-appearance order — deterministic, unlike Index.Groups' map
// order.
func (cx *CodeIndex) Groups(minSize int, fn func(rows []int32)) {
	for gi := 0; gi < cx.ngroups; gi++ {
		if rows := cx.group(int32(gi)); len(rows) >= minSize {
			fn(rows)
		}
	}
}

// GroupsWhile is Groups with early termination: iteration stops as soon
// as fn returns false.
func (cx *CodeIndex) GroupsWhile(minSize int, fn func(rows []int32) bool) {
	for gi := 0; gi < cx.ngroups; gi++ {
		if rows := cx.group(int32(gi)); len(rows) >= minSize && !fn(rows) {
			return
		}
	}
}

// GroupOf returns the group (member rows) of the given row.
func (cx *CodeIndex) GroupOf(row int) []int32 { return cx.group(cx.rowGroup[row]) }

// GroupOrdinal returns the dense ordinal of row's group, usable for
// O(1) seen-group deduplication.
func (cx *CodeIndex) GroupOrdinal(row int) int32 { return cx.rowGroup[row] }

// Lookup returns the TIDs whose projection equals that of t (a tuple of
// the snapshot's full arity), like Index.Lookup. If any projected value
// of t never occurs in its column, no group can match and Lookup returns
// nil without probing.
func (cx *CodeIndex) Lookup(t Tuple) []TID {
	codes := make([]uint32, len(cx.pos))
	for i, p := range cx.pos {
		c, ok := cx.snap.Dict(p).Code(t[p])
		if !ok {
			return nil
		}
		codes[i] = c
	}
	return cx.LookupCodes(codes)
}

// LookupValues returns the TIDs whose projection equals the given value
// sequence (one value per indexed position, in index position order).
// Unlike Lookup the values need not come from a tuple of the indexed
// relation — they are translated through the snapshot's dictionaries, so
// a CIND can probe a target-relation index with source-tuple values (or
// the reverse). A value that never occurs in its column matches nothing.
func (cx *CodeIndex) LookupValues(vals []Value) []TID {
	codes := make([]uint32, len(cx.pos))
	for i, p := range cx.pos {
		c, ok := cx.snap.Dict(p).Code(vals[i])
		if !ok {
			return nil
		}
		codes[i] = c
	}
	return cx.LookupCodes(codes)
}

// LookupCodes returns the TIDs of the group whose projection code
// sequence equals codes (one code per indexed position, in index
// position order, drawn from the snapshot's dictionaries). It is the
// raw probe under Lookup/LookupValues: callers that already hold codes
// — a cross-relation prober that translated them once per distinct
// source value — skip the per-probe dictionary work entirely.
func (cx *CodeIndex) LookupCodes(codes []uint32) []TID {
	rows := cx.lookupRows(codes)
	if len(rows) == 0 {
		return nil
	}
	out := make([]TID, len(rows))
	for i, r := range rows {
		out[i] = cx.snap.ids[r]
	}
	return out
}

// HasCodes reports whether some row's projection code sequence equals
// codes — LookupCodes without materializing the TID slice, the
// existence probe CIND target matching runs per source group.
func (cx *CodeIndex) HasCodes(codes []uint32) bool {
	return len(cx.lookupRows(codes)) > 0
}

// lookupRows probes the table for the group with the given projection
// code sequence and returns its member rows (nil when absent).
func (cx *CodeIndex) lookupRows(codes []uint32) []int32 {
	if len(cx.table) == 0 {
		return nil
	}
	idx := cx.hash(codes) & cx.mask
	for {
		e := cx.table[idx]
		if e == 0 {
			return nil
		}
		rows := cx.group(e - 1)
		if len(rows) == 0 {
			// A group emptied by delta maintenance (apply): its slot stays
			// in the probe chain but it has no representative to verify
			// against, so it can never match.
			idx = (idx + 1) & cx.mask
			continue
		}
		rep := int(rows[0])
		match := true
		for i, p := range cx.pos {
			if cx.snap.cols[p][rep] != codes[i] {
				match = false
				break
			}
		}
		if match {
			return rows
		}
		idx = (idx + 1) & cx.mask
	}
}

// apply derives the group index of ns — the snapshot produced by
// cx.Snapshot().Apply with net delta d, row map rowMap (old row -> new
// row, -1 = deleted) and firstNew carried rows — by splicing the
// touched rows out of and into their groups instead of rebuilding:
//
//   - If the delta neither inserts nor deletes rows nor updates any
//     indexed position, the whole index is shared structurally (same
//     arena, spans, probe table) — O(1).
//   - Otherwise only the moved rows (updated on an indexed position, or
//     inserted) are hashed and probed; every other row keeps its group
//     assignment, remapped by a straight copy. Group ordinals are
//     preserved, so the probe table is carried over verbatim; new
//     groups append. A group whose members all leave keeps its slot in
//     the probe chain but can never match again (no representative) —
//     when such dead groups outnumber the live ones the index falls
//     back to a full rebuild, as it does when the delta stops being
//     small relative to the snapshot.
//
// Hash collisions remain verified, never trusted: a moved row joins a
// group only after its code sequence is compared against a group
// member's (codes are comparable across the two snapshots because
// Snapshot.Apply shares the append-only dictionaries).
func (cx *CodeIndex) apply(ns *Snapshot, d *Delta, rowMap []int32, firstNew int) *CodeIndex {
	// The splice below reads group membership straight off starts/arena
	// (and uses span widths as counts); fold any append-absorbed rows
	// into a flat arena first so that assumption holds.
	if cx.nExtra > 0 {
		cx = cx.fold()
	}
	// movedOld: old rows leaving their group because an indexed position
	// was updated (deleted rows are handled via rowMap).
	var movedOld map[int32]bool
	var movedNew []int32 // new rows to (re)place, ascending
	for id, ps := range d.Updated {
		touched := false
		for _, p := range ps {
			for _, q := range cx.pos {
				if p == q {
					touched = true
					break
				}
			}
			if touched {
				break
			}
		}
		if !touched {
			continue
		}
		row, ok := cx.snap.Row(id)
		if !ok {
			continue
		}
		if movedOld == nil {
			movedOld = make(map[int32]bool)
		}
		movedOld[int32(row)] = true
		if rowMap == nil { // identity: structural delta
			movedNew = append(movedNew, int32(row))
		} else {
			movedNew = append(movedNew, rowMap[row])
		}
	}
	if len(d.Inserted) == 0 && len(d.Deleted) == 0 && len(movedNew) == 0 {
		// Nothing the index can see changed: share everything (including
		// the extension claim — the arrays are the same backing).
		return &CodeIndex{snap: ns, pos: cx.pos, hash: cx.hash,
			arena: cx.arena, starts: cx.starts, rowGroup: cx.rowGroup,
			table: cx.table, mask: cx.mask,
			ngroups: cx.ngroups, extend: cx.extend}
	}
	nNew := ns.Len()
	if len(cx.table) == 0 || len(movedNew)+len(d.Inserted)+len(d.Deleted) > nNew/4 {
		return buildCodeIndex(ns, cx.pos, cx.hash)
	}
	sort.Slice(movedNew, func(i, j int) bool { return movedNew[i] < movedNew[j] })
	for nr := firstNew; nr < nNew; nr++ {
		movedNew = append(movedNew, int32(nr))
	}

	G := len(cx.starts) - 1
	counts := make([]int32, G, G+len(movedNew))
	var newRowGroup []int32
	if rowMap == nil {
		// Structural delta: rows did not shift, so group assignments
		// memcpy over, counts fall out of the span widths, and only the
		// moved rows leave their groups.
		newRowGroup = append([]int32(nil), cx.rowGroup...)
		for i := range counts {
			counts[i] = cx.starts[i+1] - cx.starts[i]
		}
		for _, nr := range movedNew {
			counts[cx.rowGroup[nr]]--
		}
	} else {
		// Carry over every surviving, unmoved row with its old group.
		newRowGroup = make([]int32, nNew)
		for oldRow, gi := range cx.rowGroup {
			nr := rowMap[oldRow]
			if nr < 0 || movedOld[int32(oldRow)] {
				continue
			}
			newRowGroup[nr] = gi
			counts[gi]++
		}
	}

	// Place the moved rows through a copy of the probe table. Old group
	// keys are read from the old snapshot's frozen columns (any old
	// member row carries the key, even one that just left); new groups'
	// keys from the new snapshot.
	oldCols := make([][]uint32, len(cx.pos))
	newCols := make([][]uint32, len(cx.pos))
	for i, p := range cx.pos {
		oldCols[i] = cx.snap.Col(p)
		newCols[i] = ns.Col(p)
	}
	// The probe table is shared until a write is needed (a batch whose
	// moved rows all land in existing groups — the common steady state —
	// never copies it).
	table := cx.table
	tableOwned := false
	mask := cx.mask
	var newReps []int32 // group ordinal - G -> representative new row
	matches := func(gi int32, codes []uint32) bool {
		if int(gi) < G {
			rows := cx.group(gi)
			if len(rows) == 0 {
				return false // dead before this delta: key unrecoverable
			}
			rep := rows[0]
			for i := range codes {
				if oldCols[i][rep] != codes[i] {
					return false
				}
			}
			return true
		}
		rep := newReps[int(gi)-G]
		for i := range codes {
			if newCols[i][rep] != codes[i] {
				return false
			}
		}
		return true
	}
	codes := make([]uint32, len(cx.pos))
	for _, nr := range movedNew {
		for i := range newCols {
			codes[i] = newCols[i][nr]
		}
		// Keep the load factor <= 1/2 counting every slot ever assigned
		// (dead groups still occupy probe slots).
		if uint64(len(counts)+1)*2 > uint64(len(table)) {
			size := uint64(len(table)) * 2
			table = make([]int32, size)
			tableOwned = true
			mask = size - 1
			reseat := make([]uint32, len(cx.pos))
			for gi := 0; gi < len(counts); gi++ {
				var rep int32
				if gi < G {
					rows := cx.group(int32(gi))
					if len(rows) == 0 {
						continue // dead: drop from the grown table
					}
					rep = rows[0]
					for i := range reseat {
						reseat[i] = oldCols[i][rep]
					}
				} else {
					rep = newReps[gi-G]
					for i := range reseat {
						reseat[i] = newCols[i][rep]
					}
				}
				idx := cx.hash(reseat) & mask
				for table[idx] != 0 {
					idx = (idx + 1) & mask
				}
				table[idx] = int32(gi) + 1
			}
		}
		idx := cx.hash(codes) & mask
		for {
			e := table[idx]
			if e == 0 {
				if !tableOwned {
					table = append([]int32(nil), table...)
					tableOwned = true
				}
				gi := int32(len(counts))
				table[idx] = gi + 1
				counts = append(counts, 1)
				newReps = append(newReps, nr)
				newRowGroup[nr] = gi
				break
			}
			if matches(e-1, codes) {
				newRowGroup[nr] = e - 1
				counts[e-1]++
				break
			}
			idx = (idx + 1) & mask
		}
	}

	// Dead-group hygiene: when emptied groups outnumber live ones the
	// spliced index wastes probe slots and span bookkeeping — rebuild.
	empty := 0
	for _, c := range counts {
		if c == 0 {
			empty++
		}
	}
	if empty*2 > len(counts) {
		return buildCodeIndex(ns, cx.pos, cx.hash)
	}

	// Lay the groups out contiguously again (groups keep their ordinal,
	// rows ascend within each span because the fill walks rows in order).
	G2 := len(counts)
	starts := make([]int32, G2+1)
	for i, c := range counts {
		starts[i+1] = starts[i] + c
	}
	cur := counts // reuse as fill cursors
	copy(cur, starts[:G2])
	arena := make([]int32, nNew)
	rg := newRowGroup
	for nr := 0; nr < nNew; nr++ {
		gi := rg[nr]
		arena[cur[gi]] = int32(nr)
		cur[gi]++
	}
	return &CodeIndex{snap: ns, pos: cx.pos, hash: cx.hash,
		arena: arena, starts: starts, rowGroup: rg, table: table, mask: mask,
		ngroups: G2, extend: new(atomic.Bool)}
}

// applyAppend derives the group index of ns — produced by the
// append-only Snapshot fast path, with rows firstNew..ns.Len() newly
// appended — without re-laying the arena. Each appended row is hashed
// and probed (O(|Δ|)); matched rows land in the extra tail of their
// group, new groups take ordinals beyond starts with their members
// held entirely in extra. The probe table is shared copy-on-write and
// grown when the load factor demands it, exactly like the splice
// path. Once the absorbed tail stops being small relative to the
// snapshot the result folds back into a flat arena, so the per-batch
// cost stays O(|Δ|) amortized with an O(n) layout every O(n/|Δ|)
// batches — never the per-batch O(n) the splice pays.
func (cx *CodeIndex) applyAppend(ns *Snapshot, firstNew int) *CodeIndex {
	nNew := ns.Len()
	k := nNew - firstNew
	if len(cx.table) == 0 || k > nNew/4 {
		// Empty base (no probe table to extend) or a batch so large the
		// O(n) rebuild is within a constant of the absorb: rebuild.
		return buildCodeIndex(ns, cx.pos, cx.hash)
	}
	cols := make([][]uint32, len(cx.pos))
	for i, p := range cx.pos {
		cols[i] = ns.Col(p) // shared prefix: valid for old and appended rows
	}
	claimed := cx.extend.CompareAndSwap(false, true)
	rg := cx.rowGroup
	if !claimed {
		rg = make([]int32, len(cx.rowGroup), nNew)
		copy(rg, cx.rowGroup)
	}
	// The extra map is copied per derivation (readers of the old index
	// walk their own version); the member slices are extended in place
	// under the claim, or copied when it was lost.
	extra := make(map[int32][]int32, len(cx.extra)+k)
	for g, rows := range cx.extra {
		if claimed {
			extra[g] = rows
		} else {
			extra[g] = append([]int32(nil), rows...)
		}
	}
	ngroups := cx.ngroups
	table := cx.table
	tableOwned := false
	mask := cx.mask
	G0 := len(cx.starts) - 1
	// repOf returns a representative row of group gi, or -1 for a dead
	// group (no arena span, no extra members) — dead groups keep their
	// probe slot but can never match.
	repOf := func(gi int32) int32 {
		if int(gi) < G0 {
			if s0, s1 := cx.starts[gi], cx.starts[gi+1]; s1 > s0 {
				return cx.arena[s0]
			}
		}
		if ext := extra[gi]; len(ext) > 0 {
			return ext[0]
		}
		return -1
	}
	codes := make([]uint32, len(cx.pos))
	for nr := firstNew; nr < nNew; nr++ {
		for i := range cols {
			codes[i] = cols[i][nr]
		}
		// Load factor <= 1/2 counting every slot ever assigned.
		if uint64(ngroups+1)*2 > uint64(len(table)) {
			size := uint64(len(table)) * 2
			grown := make([]int32, size)
			tableOwned = true
			mask = size - 1
			reseat := make([]uint32, len(cx.pos))
			for gi := 0; gi < ngroups; gi++ {
				rep := repOf(int32(gi))
				if rep < 0 {
					continue // dead: drop from the grown table
				}
				for i := range reseat {
					reseat[i] = cols[i][rep]
				}
				idx := cx.hash(reseat) & mask
				for grown[idx] != 0 {
					idx = (idx + 1) & mask
				}
				grown[idx] = int32(gi) + 1
			}
			table = grown
		}
		idx := cx.hash(codes) & mask
		for {
			e := table[idx]
			if e == 0 {
				if !tableOwned {
					table = append([]int32(nil), table...)
					tableOwned = true
				}
				gi := int32(ngroups)
				table[idx] = gi + 1
				ngroups++
				extra[gi] = append(extra[gi], int32(nr))
				rg = append(rg, gi)
				break
			}
			gi := e - 1
			rep := repOf(gi)
			same := rep >= 0
			if same {
				for i := range cols {
					if cols[i][rep] != codes[i] {
						same = false
						break
					}
				}
			}
			if same {
				extra[gi] = append(extra[gi], int32(nr))
				rg = append(rg, gi)
				break
			}
			idx = (idx + 1) & mask
		}
	}
	out := &CodeIndex{snap: ns, pos: cx.pos, hash: cx.hash,
		arena: cx.arena, starts: cx.starts, rowGroup: rg,
		table: table, mask: mask,
		extra: extra, nExtra: cx.nExtra + k,
		ngroups: ngroups, extend: new(atomic.Bool)}
	if out.nExtra > nNew/8+256 {
		return out.fold()
	}
	return out
}

// fold re-lays the arena from rowGroup so every group is a contiguous
// span again — O(n) with no hashing (the probe table, mask and group
// ordinals all carry over). It is the amortization step of the append
// fast path and the normalization apply runs before splicing.
func (cx *CodeIndex) fold() *CodeIndex {
	n := len(cx.rowGroup)
	counts := make([]int32, cx.ngroups)
	for _, gi := range cx.rowGroup {
		counts[gi]++
	}
	starts := make([]int32, cx.ngroups+1)
	for i, c := range counts {
		starts[i+1] = starts[i] + c
	}
	cur := counts // reuse as fill cursors
	copy(cur, starts[:cx.ngroups])
	arena := make([]int32, n)
	for row := 0; row < n; row++ {
		gi := cx.rowGroup[row]
		arena[cur[gi]] = int32(row)
		cur[gi]++
	}
	return &CodeIndex{snap: cx.snap, pos: cx.pos, hash: cx.hash,
		arena: arena, starts: starts, rowGroup: cx.rowGroup,
		table: cx.table, mask: cx.mask,
		ngroups: cx.ngroups, extend: cx.extend}
}

// Positions returns the indexed attribute positions.
func (cx *CodeIndex) Positions() []int { return cx.pos }

// Len returns the number of distinct projection groups.
func (cx *CodeIndex) Len() int { return cx.ngroups }

// Snapshot returns the snapshot the index was built over.
func (cx *CodeIndex) Snapshot() *Snapshot { return cx.snap }
