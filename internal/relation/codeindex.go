package relation

// CodeIndex is the columnar counterpart of Index: a hash index over a
// list of attribute positions of a Snapshot, grouping rows that share a
// projection. Where Index materializes one heap string per tuple and
// buckets in a map[string][]TID, CodeIndex hashes the fixed-width code
// sequence of each row to a uint64 and groups rows through a flat
// open-addressing table into a single shared arena — a handful of
// pointer-free arrays instead of hundreds of thousands of heap strings
// and per-bucket slices. Hash collisions are verified, never trusted:
// rows join a group only if their code sequences are actually equal.
//
// It offers the same contract as Index — Groups / GroupsWhile iteration
// with a minimum group size and early termination, plus Lookup —
// except that groups are handed out as dense row indexes (ascending, so
// rows[0] is the lowest-TID representative); Snapshot.TID converts back.
type CodeIndex struct {
	snap *Snapshot
	pos  []int
	hash codeHasher
	// Groups are spans of one arena: group g holds the rows
	// arena[starts[g]:starts[g+1]], ascending. rowGroup inverts the
	// mapping; table is the open-addressing probe table (slot = group
	// ordinal + 1, 0 = empty) kept for Lookup.
	arena    []int32
	starts   []int32
	rowGroup []int32
	table    []int32
	mask     uint64
}

// codeHasher hashes a projected code sequence; injectable so tests can
// force probe collisions and exercise the verification path.
type codeHasher func(codes []uint32) uint64

// FNV-1a 64-bit parameters; each 32-bit code is folded in as four bytes.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashCodes is the production hasher: FNV-1a over the bytes of the code
// sequence.
func hashCodes(codes []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range codes {
		h = (h ^ uint64(c&0xff)) * fnvPrime64
		h = (h ^ uint64((c>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((c>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(c>>24)) * fnvPrime64
	}
	return h
}

// BuildCodeIndex builds a code index of the snapshot on the given
// attribute positions, interning the touched columns if needed.
func BuildCodeIndex(snap *Snapshot, pos []int) *CodeIndex {
	return buildCodeIndex(snap, pos, hashCodes)
}

func buildCodeIndex(snap *Snapshot, pos []int, hash codeHasher) *CodeIndex {
	n := snap.Len()
	cx := &CodeIndex{
		snap: snap,
		pos:  append([]int(nil), pos...),
		hash: hash,
	}
	cols := make([][]uint32, len(cx.pos))
	for i, p := range cx.pos {
		cols[i] = snap.Col(p) // interns the column on first touch
	}
	if n == 0 {
		cx.starts = []int32{0}
		return cx
	}
	// Probe table at load factor <= 1/2, power-of-two sized.
	size := uint64(16)
	for size < uint64(n)*2 {
		size *= 2
	}
	cx.table = make([]int32, size)
	cx.mask = size - 1
	cx.rowGroup = make([]int32, n)
	var reps []int32   // group ordinal -> first (representative) row
	var counts []int32 // group ordinal -> member count
	codes := make([]uint32, len(cx.pos))
	for row := 0; row < n; row++ {
		for i := range cols {
			codes[i] = cols[i][row]
		}
		idx := hash(codes) & cx.mask
		for {
			e := cx.table[idx]
			if e == 0 {
				gi := int32(len(reps))
				cx.table[idx] = gi + 1
				reps = append(reps, int32(row))
				counts = append(counts, 1)
				cx.rowGroup[row] = gi
				break
			}
			gi := e - 1
			rep := reps[gi]
			same := true
			for i := range cols {
				if cols[i][rep] != codes[i] {
					same = false
					break
				}
			}
			if same {
				cx.rowGroup[row] = gi
				counts[gi]++
				break
			}
			idx = (idx + 1) & cx.mask
		}
	}
	// Lay the groups out contiguously: prefix-sum the counts into span
	// starts, then fill the arena in row order (groups stay ascending).
	g := len(reps)
	cx.starts = make([]int32, g+1)
	for i, c := range counts {
		cx.starts[i+1] = cx.starts[i] + c
	}
	cur := counts // reuse as fill cursors
	copy(cur, cx.starts[:g])
	cx.arena = make([]int32, n)
	for row := 0; row < n; row++ {
		gi := cx.rowGroup[row]
		cx.arena[cur[gi]] = int32(row)
		cur[gi]++
	}
	return cx
}

// group returns the member rows of group ordinal gi.
func (cx *CodeIndex) group(gi int32) []int32 {
	return cx.arena[cx.starts[gi]:cx.starts[gi+1]]
}

// Groups invokes fn for every group with at least minSize members. Rows
// within a group ascend (so rows[0] has the lowest TID); groups iterate
// in first-appearance order — deterministic, unlike Index.Groups' map
// order.
func (cx *CodeIndex) Groups(minSize int, fn func(rows []int32)) {
	for gi := 0; gi+1 < len(cx.starts); gi++ {
		if rows := cx.group(int32(gi)); len(rows) >= minSize {
			fn(rows)
		}
	}
}

// GroupsWhile is Groups with early termination: iteration stops as soon
// as fn returns false.
func (cx *CodeIndex) GroupsWhile(minSize int, fn func(rows []int32) bool) {
	for gi := 0; gi+1 < len(cx.starts); gi++ {
		if rows := cx.group(int32(gi)); len(rows) >= minSize && !fn(rows) {
			return
		}
	}
}

// GroupOf returns the group (member rows) of the given row.
func (cx *CodeIndex) GroupOf(row int) []int32 { return cx.group(cx.rowGroup[row]) }

// GroupOrdinal returns the dense ordinal of row's group, usable for
// O(1) seen-group deduplication.
func (cx *CodeIndex) GroupOrdinal(row int) int32 { return cx.rowGroup[row] }

// Lookup returns the TIDs whose projection equals that of t (a tuple of
// the snapshot's full arity), like Index.Lookup. If any projected value
// of t never occurs in its column, no group can match and Lookup returns
// nil without probing.
func (cx *CodeIndex) Lookup(t Tuple) []TID {
	if len(cx.table) == 0 {
		return nil
	}
	codes := make([]uint32, len(cx.pos))
	for i, p := range cx.pos {
		c, ok := cx.snap.Dict(p).Code(t[p])
		if !ok {
			return nil
		}
		codes[i] = c
	}
	idx := cx.hash(codes) & cx.mask
	for {
		e := cx.table[idx]
		if e == 0 {
			return nil
		}
		rows := cx.group(e - 1)
		rep := int(rows[0])
		match := true
		for i, p := range cx.pos {
			if cx.snap.cols[p][rep] != codes[i] {
				match = false
				break
			}
		}
		if match {
			out := make([]TID, len(rows))
			for i, r := range rows {
				out[i] = cx.snap.ids[r]
			}
			return out
		}
		idx = (idx + 1) & cx.mask
	}
}

// Positions returns the indexed attribute positions.
func (cx *CodeIndex) Positions() []int { return cx.pos }

// Len returns the number of distinct projection groups.
func (cx *CodeIndex) Len() int { return len(cx.starts) - 1 }

// Snapshot returns the snapshot the index was built over.
func (cx *CodeIndex) Snapshot() *Snapshot { return cx.snap }
