package relation

import "sort"

// Partitioner assigns tuples to shards by hashing a configurable key
// projection per relation. The key is the sharding contract the engine
// layers build on:
//
//   - two tuples that agree on the key land on the same shard (the hash
//     reads only key values, via the same Value.AppendKey bytes that
//     back projection-key maps, so Equal values hash equally);
//   - a CFD/eCFD whose LHS contains the key is therefore shard-local:
//     every LHS group is wholly inside one shard;
//   - an update that changes a key attribute may change the tuple's
//     shard — the ShardedDB router turns it into a cross-shard move.
//
// A relation without an explicit key defaults to the whole tuple, which
// balances load but makes no constraint shard-local (fine for CIND
// sides, which go through the replicated target-key index anyway).
type Partitioner struct {
	shards int
	keys   map[string][]int
}

// NewPartitioner returns a partitioner over the given shard count
// (minimum 1) with no per-relation keys set.
func NewPartitioner(shards int) *Partitioner {
	if shards < 1 {
		shards = 1
	}
	return &Partitioner{shards: shards, keys: make(map[string][]int)}
}

// Shards returns the shard count.
func (p *Partitioner) Shards() int { return p.shards }

// SetKey sets the hash-key attribute positions for a relation. The
// positions are normalized to sorted ascending order (the key is a set;
// hashing in a canonical order makes the shard assignment independent
// of how the caller listed it). An empty pos resets to the whole-tuple
// default.
func (p *Partitioner) SetKey(rel string, pos []int) {
	if len(pos) == 0 {
		delete(p.keys, rel)
		return
	}
	k := append([]int(nil), pos...)
	sort.Ints(k)
	p.keys[rel] = k
}

// Key returns the key positions for a relation, nil when the relation
// defaults to whole-tuple hashing. Callers must not modify the slice.
func (p *Partitioner) Key(rel string) []int { return p.keys[rel] }

// KeyTouches reports whether updating attribute pos can change a
// tuple's shard: false with a single shard, true for whole-tuple-hashed
// relations (no explicit key), and otherwise true iff pos is one of the
// key positions. Routers use it to skip move handling for updates that
// provably cannot re-home a tuple.
func (p *Partitioner) KeyTouches(rel string, pos int) bool {
	if p.shards == 1 {
		return false
	}
	key, ok := p.keys[rel]
	if !ok {
		return true
	}
	for _, q := range key {
		if q == pos {
			return true
		}
	}
	return false
}

// ShardOf returns the shard the tuple belongs on.
func (p *Partitioner) ShardOf(rel string, t Tuple) int {
	if p.shards == 1 {
		return 0
	}
	buf := make([]byte, 0, 64)
	if key, ok := p.keys[rel]; ok {
		for _, q := range key {
			buf = append(t[q].AppendKey(buf), '\x01')
		}
	} else {
		for _, v := range t {
			buf = append(v.AppendKey(buf), '\x01')
		}
	}
	return int(shardHasher(rel, buf) % uint64(p.shards))
}

// shardHasher hashes a relation name plus key bytes to a shard bucket.
// It is FNV-1a; a variable only so equivalence tests can force
// collisions (all tuples on one shard, or adversarial splits) and prove
// sharded results do not depend on placement. See
// SetShardHasherForTest.
var shardHasher = fnv1aShard

func fnv1aShard(rel string, key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(rel); i++ {
		h ^= uint64(rel[i])
		h *= prime64
	}
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// SetShardHasherForTest overrides the shard hasher — placement
// independence tests substitute degenerate hashers (everything on one
// shard, parity splits) to prove detection results never depend on
// where tuples land. Returns a restore func; not safe to call while
// routers are running.
func SetShardHasherForTest(h func(rel string, key []byte) uint64) (restore func()) {
	old := shardHasher
	shardHasher = h
	return func() { shardHasher = old }
}
