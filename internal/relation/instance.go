package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Tuple is a row of values, positionally aligned with a schema.
type Tuple []Value

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(pos []int) Tuple {
	out := make(Tuple, len(pos))
	for i, p := range pos {
		out[i] = t[p]
	}
	return out
}

// Equal reports positional equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// EqualOn reports whether t and u agree on the given positions.
func (t Tuple) EqualOn(pos []int, u Tuple) bool {
	for _, p := range pos {
		if !t[p].Equal(u[p]) {
			return false
		}
	}
	return true
}

// Key returns a hashable identity for the tuple (equal for Equal tuples).
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(v.Key())
		b.WriteByte('\x01')
	}
	return b.String()
}

// KeyOn returns a hashable identity for the projection of t onto pos.
func (t Tuple) KeyOn(pos []int) string {
	var b strings.Builder
	for _, p := range pos {
		b.WriteString(t[p].Key())
		b.WriteByte('\x01')
	}
	return b.String()
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// TID identifies a tuple within an Instance. TIDs are stable: deleting a
// tuple does not renumber the others.
type TID int

// Instance is a (multiset) instance of a schema with stable tuple
// identifiers and optional per-cell confidence weights in [0,1] used by the
// Section 5.1 repair cost metric. The zero weight slot means "use the
// default weight of 1".
//
// Every mutation of tuple data (Insert, Delete, Update) bumps a version
// counter. Derived read structures built over the instance — Index,
// Snapshot, CodeIndex — capture the version at build time, so staleness is
// detectable (Snapshot.Stale) instead of silent.
type Instance struct {
	schema  *Schema
	tuples  map[TID]Tuple
	weights map[TID][]float64
	nextID  TID
	version uint64

	// mu guards the derived-state caches below. Instances are
	// single-writer (mutations are not thread-safe), but detection reads
	// them from many goroutines at once; the caches must tolerate that.
	mu        sync.Mutex
	ids       []TID     // cached sorted TID slice; nil when invalidated
	snapCache *Snapshot // version-keyed columnar snapshot (SnapshotOf)

	// Bounded changelog (see changelog.go): entries for versions
	// (logStart, version], oldest dropped when the cap is exceeded.
	log      []ChangeEntry
	logStart uint64 // version just before the earliest retained entry
	logCap   int    // 0 = defaultChangelogCap, < 0 = disabled
}

// NewInstance returns an empty instance of the schema.
func NewInstance(schema *Schema) *Instance {
	return &Instance{
		schema:  schema,
		tuples:  make(map[TID]Tuple),
		weights: make(map[TID][]float64),
	}
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Len returns the number of tuples.
func (in *Instance) Len() int { return len(in.tuples) }

// CheckTuple validates t against the schema's arity and domains without
// inserting it. Insert and the sharded router (ShardedDB) share it so
// both reject a bad tuple with the identical error.
func (in *Instance) CheckTuple(t Tuple) error {
	if len(t) != in.schema.Arity() {
		return fmt.Errorf("relation: %s: tuple arity %d, want %d", in.schema.Name(), len(t), in.schema.Arity())
	}
	for i, v := range t {
		if !in.schema.Attr(i).Domain.Contains(v) {
			return fmt.Errorf("relation: %s: value %v not in dom(%s)=%v",
				in.schema.Name(), v, in.schema.Attr(i).Name, in.schema.Attr(i).Domain)
		}
	}
	return nil
}

// Insert adds a tuple and returns its TID. The tuple is validated against
// the schema's arity and domains.
func (in *Instance) Insert(t Tuple) (TID, error) {
	if err := in.CheckTuple(t); err != nil {
		return 0, err
	}
	id := in.nextID
	in.nextID++
	in.tuples[id] = t.Clone()
	in.version++
	in.mu.Lock()
	if in.ids != nil {
		// The new TID is strictly larger than every existing one, so the
		// cached sorted slice stays sorted. Appending never overwrites an
		// element visible through a previously returned slice.
		in.ids = append(in.ids, id)
	}
	in.logAppend(ChangeInsert, id, -1)
	in.mu.Unlock()
	return id, nil
}

// InsertWithTID adds a tuple under a caller-chosen TID. It is the
// primitive behind sharding: a ShardedDB allocates TIDs globally and
// each shard instance stores a sparse subset of them, so a tuple keeps
// its identity when a partition-key update moves it between shards.
// The TID must be free; nextID advances past it so a later Insert
// never collides with routed IDs. Unlike Insert the new TID may sort below
// existing ones, which invalidates the sorted-ID cache and (via the
// changelog) makes snapshot catch-up fall back to a rebuild when the
// delta contains such an out-of-order insert (see SnapshotOf).
func (in *Instance) InsertWithTID(id TID, t Tuple) error {
	if err := in.CheckTuple(t); err != nil {
		return err
	}
	return in.insertShared(id, t.Clone())
}

// insertShared is InsertWithTID without the defensive clone: the tuple
// is installed as-is, aliasing the caller's storage. Safe only when the
// caller guarantees the tuple is never mutated in place afterward — the
// instance itself never does (Update replaces tuples copy-on-write).
// Partition bulk-loads use it so a sharded replica shares tuple storage
// with the source instance instead of doubling the heap.
func (in *Instance) insertShared(id TID, t Tuple) error {
	if _, ok := in.tuples[id]; ok {
		return fmt.Errorf("relation: %s: tuple %d already exists", in.schema.Name(), id)
	}
	if id >= in.nextID {
		in.nextID = id + 1
	}
	in.tuples[id] = t
	in.version++
	in.mu.Lock()
	if in.ids != nil {
		if n := len(in.ids); n == 0 || id > in.ids[n-1] {
			in.ids = append(in.ids, id)
		} else {
			in.ids = nil // out-of-order TID: rebuild lazily
		}
	}
	in.logAppend(ChangeInsert, id, -1)
	in.mu.Unlock()
	return nil
}

// NextTID returns the TID the next Insert would allocate.
func (in *Instance) NextTID() TID { return in.nextID }

// MustInsert is Insert that panics on error; for tests and fixtures.
func (in *Instance) MustInsert(vals ...Value) TID {
	id, err := in.Insert(Tuple(vals))
	if err != nil {
		panic(err)
	}
	return id
}

// Delete removes the tuple with the given TID. It reports whether the
// tuple existed.
func (in *Instance) Delete(id TID) bool {
	if _, ok := in.tuples[id]; !ok {
		return false
	}
	delete(in.tuples, id)
	delete(in.weights, id)
	in.version++
	in.mu.Lock()
	in.ids = nil
	in.logAppend(ChangeDelete, id, -1)
	in.mu.Unlock()
	return true
}

// Tuple returns the tuple with the given TID.
func (in *Instance) Tuple(id TID) (Tuple, bool) {
	t, ok := in.tuples[id]
	return t, ok
}

// Update replaces attribute pos of tuple id with v. Like Insert and
// Delete it bumps the instance version, so indexes and snapshots built
// before the update are detectably stale rather than silently wrong.
// The stored tuple is replaced copy-on-write, never mutated in place:
// snapshots (and any Tuple result) taken before the update keep the
// pre-update values instead of changing under their readers.
func (in *Instance) Update(id TID, pos int, v Value) error {
	t, ok := in.tuples[id]
	if !ok {
		return fmt.Errorf("relation: %s: no tuple %d", in.schema.Name(), id)
	}
	if pos < 0 || pos >= in.schema.Arity() {
		return fmt.Errorf("relation: %s: position %d out of range (arity %d)",
			in.schema.Name(), pos, in.schema.Arity())
	}
	if !in.schema.Attr(pos).Domain.Contains(v) {
		return fmt.Errorf("relation: %s: value %v not in dom(%s)", in.schema.Name(), v, in.schema.Attr(pos).Name)
	}
	nt := t.Clone()
	nt[pos] = v
	in.tuples[id] = nt
	in.version++
	in.mu.Lock()
	in.logAppend(ChangeUpdate, id, pos)
	in.mu.Unlock()
	return nil
}

// Version returns the mutation counter: it changes whenever Insert,
// Delete or Update changes tuple data. Derived structures (Index,
// Snapshot, CodeIndex) record the version they were built at; comparing
// against Version detects staleness.
func (in *Instance) Version() uint64 { return in.version }

// IDs returns the TIDs in ascending order (deterministic iteration). The
// slice is cached between mutations — callers must not modify it. A fresh
// slice is built only after a Delete (Insert extends the cache in place,
// since new TIDs always sort last). Safe for concurrent readers.
func (in *Instance) IDs() []TID {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.ids == nil {
		ids := make([]TID, 0, len(in.tuples))
		for id := range in.tuples {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		in.ids = ids
	}
	return in.ids
}

// SnapshotOf returns the version-keyed cached columnar snapshot of the
// instance, building one when none exists. Snapshots are immutable, so
// repeated detection over an unchanged instance (the steady state of a
// serving system) reuses the interned columns and group indexes
// outright. When the instance has been mutated since the last build,
// the cached snapshot catches up through the changelog instead of
// rebuilding: Snapshot.Apply shares every unchanged code column and
// group index and re-interns only the changed cells, so a batch of k
// updates against an n-tuple instance costs O(k) dictionary work plus
// array copies, not a fresh O(n) freeze-intern-index pass. A cache that
// has fallen behind a truncated changelog — or further behind than half
// the instance — falls back to the full rebuild. Safe for concurrent
// readers; concurrent cache misses may build (or catch up) twice, last
// stored wins (both results are equivalent).
func SnapshotOf(in *Instance) *Snapshot {
	in.mu.Lock()
	s := in.snapCache
	v := in.version
	in.mu.Unlock()
	if s != nil && s.version == v {
		return s
	}
	if s != nil {
		if entries, ok := in.ChangesSince(s.version); ok && insertsMonotonic(s, entries) &&
			(catchUpWorthwhile(len(entries), len(s.ids)) || allInserts(entries)) {
			s = s.Apply(entries)
		} else {
			s = NewSnapshot(in)
		}
	} else {
		s = NewSnapshot(in)
	}
	in.mu.Lock()
	in.snapCache = s
	in.mu.Unlock()
	return s
}

// catchUpWorthwhile decides delta catch-up vs full rebuild: replaying a
// delta comparable in size to the instance costs more than a fresh
// build (every touched cell pays a hash probe on the catch-up path but
// rides the bulk intern on the build path).
func catchUpWorthwhile(deltaLen, rows int) bool {
	return deltaLen <= rows/2+64
}

// allInserts reports whether the delta is pure inserts — the shape
// Apply absorbs through its O(|Δ|) append-only fast path, which beats
// a full rebuild at any delta size (a bulk load doubles the instance
// for one tail append instead of a fresh freeze-intern-index pass).
func allInserts(entries []ChangeEntry) bool {
	for _, e := range entries {
		if e.Op != ChangeInsert {
			return false
		}
	}
	return true
}

// insertsMonotonic reports whether every insert in the delta carries a
// TID above the snapshot's largest row and above every earlier insert in
// the delta. Snapshot.Apply splices inserted rows at the tail, which is
// only correct under that invariant; plain Insert always satisfies it,
// but InsertWithTID (a cross-shard move landing an old TID) can break
// it, in which case catch-up must fall back to a full rebuild. The scan
// is conservative: an out-of-order insert that nets out (deleted again
// within the delta) still forces the rebuild.
func insertsMonotonic(s *Snapshot, entries []ChangeEntry) bool {
	last := TID(-1)
	if n := len(s.ids); n > 0 {
		last = s.ids[n-1]
	}
	for _, e := range entries {
		if e.Op != ChangeInsert {
			continue
		}
		if e.TID <= last {
			return false
		}
		last = e.TID
	}
	return true
}

// Tuples returns the tuples in TID order.
func (in *Instance) Tuples() []Tuple {
	ids := in.IDs()
	out := make([]Tuple, len(ids))
	for i, id := range ids {
		out[i] = in.tuples[id]
	}
	return out
}

// SetWeight records the confidence weight w(t,A) ∈ [0,1] for cell (id, pos).
func (in *Instance) SetWeight(id TID, pos int, w float64) error {
	if _, ok := in.tuples[id]; !ok {
		return fmt.Errorf("relation: %s: no tuple %d", in.schema.Name(), id)
	}
	if pos < 0 || pos >= in.schema.Arity() {
		return fmt.Errorf("relation: %s: position %d out of range (arity %d)",
			in.schema.Name(), pos, in.schema.Arity())
	}
	if w < 0 || w > 1 {
		return fmt.Errorf("relation: weight %v out of [0,1]", w)
	}
	ws, ok := in.weights[id]
	if !ok {
		ws = make([]float64, in.schema.Arity())
		for i := range ws {
			ws[i] = -1 // -1 means unset ⇒ default
		}
		in.weights[id] = ws
	}
	ws[pos] = w
	return nil
}

// Weight returns the confidence weight for cell (id, pos), defaulting to 1
// when none was recorded (the paper's "if w(t,A) is not available, a
// default value is used").
func (in *Instance) Weight(id TID, pos int) float64 {
	if ws, ok := in.weights[id]; ok && ws[pos] >= 0 {
		return ws[pos]
	}
	return 1
}

// Clone returns a deep copy of the instance (same TIDs and weights).
// The changelog is not copied: the clone starts with an empty log, so
// derived structures of the original cannot catch up against the clone.
func (in *Instance) Clone() *Instance {
	out := NewInstance(in.schema)
	out.nextID = in.nextID
	out.version = in.version
	out.logStart = in.version
	out.logCap = in.logCap
	for id, t := range in.tuples {
		out.tuples[id] = t.Clone()
	}
	for id, ws := range in.weights {
		out.weights[id] = append([]float64(nil), ws...)
	}
	return out
}

// Contains reports whether some tuple of the instance equals t.
func (in *Instance) Contains(t Tuple) bool {
	for _, u := range in.tuples {
		if u.Equal(t) {
			return true
		}
	}
	return false
}

// Dedup removes duplicate tuples, keeping the lowest TID of each group,
// and returns the number removed.
func (in *Instance) Dedup() int {
	seen := make(map[string]bool, len(in.tuples))
	removed := 0
	for _, id := range in.IDs() {
		k := in.tuples[id].Key()
		if seen[k] {
			in.Delete(id)
			removed++
			continue
		}
		seen[k] = true
	}
	return removed
}

// String renders the instance as a small table (deterministic order).
func (in *Instance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", in.schema)
	for _, id := range in.IDs() {
		fmt.Fprintf(&b, "  t%d: %s\n", id, in.tuples[id])
	}
	return b.String()
}

// Database is a named collection of instances, one per relation schema.
// Like Instance it is single-writer: Add must not run concurrently with
// readers, but the derived-snapshot cache below tolerates concurrent
// DBSnapshotOf calls.
type Database struct {
	instances map[string]*Instance

	// mu guards snapCache, the version-keyed whole-database snapshot
	// (DBSnapshotOf).
	mu        sync.Mutex
	snapCache *DBSnapshot
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{instances: make(map[string]*Instance)}
}

// Add registers an instance under its schema name; it replaces any
// previous instance of the same relation.
func (db *Database) Add(in *Instance) {
	db.instances[in.Schema().Name()] = in
}

// Instance returns the instance of the named relation.
func (db *Database) Instance(name string) (*Instance, bool) {
	in, ok := db.instances[name]
	return in, ok
}

// MustInstance is Instance that panics when the relation is missing.
func (db *Database) MustInstance(name string) *Instance {
	in, ok := db.instances[name]
	if !ok {
		panic(fmt.Sprintf("relation: database has no relation %q", name))
	}
	return in
}

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.instances))
	for n := range db.instances {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the database.
func (db *Database) Clone() *Database {
	out := NewDatabase()
	for _, in := range db.instances {
		out.Add(in.Clone())
	}
	return out
}

// Size returns the total number of tuples across all relations.
func (db *Database) Size() int {
	n := 0
	for _, in := range db.instances {
		n += in.Len()
	}
	return n
}
