package cfd

import "repro/internal/relation"

// This file implements the implication analysis of Section 4.1:
// Σ ⊨ ϕ iff every instance satisfying Σ satisfies ϕ. Theorem 4.2 pins the
// problem coNP-complete in general; Theorem 4.3 gives a quadratic
// algorithm when no effectively finite domain is involved.
//
// Both procedures rest on the two-tuple characterization: CFD satisfaction
// is closed under subsets, so Σ ⊭ ϕ iff some instance of at most two
// tuples satisfies Σ and violates ϕ.

// Implies decides Σ ⊨ ϕ, dispatching to the quadratic chase when no
// effectively finite domain is involved and to the exact search otherwise.
func Implies(set []*CFD, phi *CFD) bool {
	all := append(append([]*CFD(nil), set...), phi)
	if !HasFiniteDomainAttrs(all) {
		return impliesFast(set, phi)
	}
	return ImpliesExact(set, phi)
}

// ImpliesExact decides Σ ⊨ ϕ by exhaustive two-tuple counterexample
// search, matching the coNP upper bound of Theorem 4.2. It is exact for
// every input.
func ImpliesExact(set []*CFD, phi *CFD) bool {
	sigma, schema, err := normalizeRows(set)
	if err != nil {
		return false
	}
	for _, target := range phi.Normalize() {
		tRows, tSchema, err := normalizeRows([]*CFD{target})
		if err != nil {
			return false
		}
		if schema == nil {
			schema = tSchema
		}
		if !impliesNormalExact(sigma, schema, tRows[0]) {
			return false
		}
	}
	return true
}

// impliesNormalExact searches for a ≤2-tuple counterexample to the normal
// target row. Candidate values per attribute: the full domain when
// effectively finite, else constants of Σ∪{ϕ} plus two fresh values (two,
// so that t1 and t2 can disagree on a position with both values fresh).
func impliesNormalExact(sigma []normalRow, schema *relation.Schema, target normalRow) bool {
	rows := append(append([]normalRow(nil), sigma...), target)
	pos := involvedPositions(rows)
	consts := constantsAt(rows)
	cands := make([][]relation.Value, len(pos))
	for i, p := range pos {
		cands[i] = candidateValues(schema.Attr(p), consts[p], 2)
	}
	posIdx := make(map[int]int, len(pos))
	for i, p := range pos {
		posIdx[p] = i
	}
	// Assignment arrays indexed like pos; nil Value means unassigned.
	t1 := make([]relation.Value, len(pos))
	t2 := make([]relation.Value, len(pos))

	inX := make(map[int]bool, len(target.lhsPos))
	for _, p := range target.lhsPos {
		inX[p] = true
	}

	// Order: X positions first (assigned jointly), then the rest of t1,
	// then the rest of t2.
	var xIdx, restIdx []int
	for i, p := range pos {
		if inX[p] {
			xIdx = append(xIdx, i)
		} else {
			restIdx = append(restIdx, i)
		}
	}

	// patternCellAt returns ϕ's LHS cell for position p.
	cellAt := func(p int) (Cell, bool) {
		for j, lp := range target.lhsPos {
			if lp == p {
				return target.lhs[j], true
			}
		}
		return Cell{}, false
	}

	counterexample := false
	var dfsX func(k int)
	var dfs1 func(k int)
	var dfs2 func(k int)

	check := func() {
		// Both tuples fully assigned. Verify {t1,t2} ⊨ Σ and ϕ violated.
		get := func(t []relation.Value, p int) relation.Value { return t[posIdx[p]] }
		pairOK := func(ta, tb []relation.Value, r normalRow) bool {
			// t_a[X'] = t_b[X'] ≍ sp[X'] ⇒ t_a[A'] = t_b[A'] ≍ sp[A']
			for j, cell := range r.lhs {
				p := r.lhsPos[j]
				va, vb := get(ta, p), get(tb, p)
				if !va.Equal(vb) || !cell.Matches(va) {
					return true // premise fails
				}
			}
			va, vb := get(ta, r.rhsPos), get(tb, r.rhsPos)
			return va.Equal(vb) && r.rhs.Matches(va)
		}
		for _, r := range sigma {
			if !pairOK(t1, t1, r) || !pairOK(t2, t2, r) || !pairOK(t1, t2, r) {
				return
			}
		}
		// ϕ's premise holds by construction (X joint and pattern-matched);
		// check the conclusion fails.
		va, vb := get(t1, target.rhsPos), get(t2, target.rhsPos)
		if va.Equal(vb) && target.rhs.Matches(va) {
			return
		}
		counterexample = true
	}

	dfs2 = func(k int) {
		if counterexample {
			return
		}
		if k == len(restIdx) {
			check()
			return
		}
		i := restIdx[k]
		for _, v := range cands[i] {
			t2[i] = v
			dfs2(k + 1)
			if counterexample {
				return
			}
		}
	}
	dfs1 = func(k int) {
		if counterexample {
			return
		}
		if k == len(restIdx) {
			dfs2(0)
			return
		}
		i := restIdx[k]
		for _, v := range cands[i] {
			t1[i] = v
			dfs1(k + 1)
			if counterexample {
				return
			}
		}
	}
	dfsX = func(k int) {
		if counterexample {
			return
		}
		if k == len(xIdx) {
			dfs1(0)
			return
		}
		i := xIdx[k]
		cell, _ := cellAt(pos[i])
		for _, v := range cands[i] {
			if !cell.Matches(v) {
				continue // ϕ's premise must match on X
			}
			t1[i], t2[i] = v, v
			dfsX(k + 1)
			if counterexample {
				return
			}
		}
	}
	dfsX(0)
	return !counterexample
}

// impliesFast decides Σ ⊨ ϕ via the deterministic chase of Theorem 4.3,
// valid when no effectively finite domain is involved. Starting from the
// freest two-tuple template that triggers ϕ's premise — X positions
// equated between the tuples and bound to ϕ's pattern constants, all
// other positions pairwise-distinct and fresh — it applies Σ's rows as
// equality/constant-generating rules to a fixpoint. Because premises are
// positive (equalities and constant matches), the freest template fires
// the fewest rules; a binding conflict therefore rules out every
// counterexample, and otherwise the canonical instance of the final state
// is itself a counterexample iff it violates ϕ.
func impliesFast(set []*CFD, phi *CFD) bool {
	sigma, schema, err := normalizeRows(set)
	if err != nil {
		return false
	}
	for _, target := range phi.Normalize() {
		tRows, tSchema, err := normalizeRows([]*CFD{target})
		if err != nil {
			return false
		}
		if schema == nil {
			schema = tSchema
		}
		if !impliesNormalFast(sigma, schema, tRows[0]) {
			return false
		}
	}
	return true
}

// pairState is the symbolic two-tuple chase state: a union-find over the
// 2·arity cell slots with optional constant bindings per class.
type pairState struct {
	parent []int
	bound  []relation.Value // indexed by root; nil kind (null) = unbound
	has    []bool
	arity  int
	failed bool
}

func newPairState(arity int) *pairState {
	s := &pairState{parent: make([]int, 2*arity), bound: make([]relation.Value, 2*arity), has: make([]bool, 2*arity), arity: arity}
	for i := range s.parent {
		s.parent[i] = i
	}
	return s
}

func (s *pairState) slot(tuple, pos int) int { return tuple*s.arity + pos }

func (s *pairState) find(i int) int {
	for s.parent[i] != i {
		s.parent[i] = s.parent[s.parent[i]]
		i = s.parent[i]
	}
	return i
}

// union merges two classes; returns true when the state changed.
func (s *pairState) union(i, j int) bool {
	ri, rj := s.find(i), s.find(j)
	if ri == rj {
		return false
	}
	s.parent[rj] = ri
	if s.has[rj] {
		if s.has[ri] && !s.bound[ri].Equal(s.bound[rj]) {
			s.failed = true
		}
		s.bound[ri] = s.bound[rj]
		s.has[ri] = true
	}
	return true
}

// bind binds a class to a constant; returns true when the state changed.
func (s *pairState) bind(i int, v relation.Value) bool {
	r := s.find(i)
	if s.has[r] {
		if !s.bound[r].Equal(v) {
			s.failed = true
		}
		return false
	}
	s.bound[r] = v
	s.has[r] = true
	return true
}

// boundTo reports whether slot i's class is bound, and to what.
func (s *pairState) boundTo(i int) (relation.Value, bool) {
	r := s.find(i)
	return s.bound[r], s.has[r]
}

// matches reports whether, in the freest interpretation, the slot's value
// matches a pattern cell: wildcards always match; constants match only
// when the class is bound to that constant (unbound classes denote fresh
// values distinct from every constant).
func (s *pairState) matches(i int, cell Cell) bool {
	if cell.IsWildcard() {
		return true
	}
	v, ok := s.boundTo(i)
	return ok && v.Equal(cell.Value())
}

// equal reports whether two slots denote equal values in the freest
// interpretation: either the same class, or two classes bound to the same
// constant.
func (s *pairState) equal(i, j int) bool {
	if s.find(i) == s.find(j) {
		return true
	}
	vi, oki := s.boundTo(i)
	vj, okj := s.boundTo(j)
	return oki && okj && vi.Equal(vj)
}

func impliesNormalFast(sigma []normalRow, schema *relation.Schema, target normalRow) bool {
	st := newPairState(schema.Arity())
	// Seed: ϕ's premise on X.
	for j, p := range target.lhsPos {
		st.union(st.slot(0, p), st.slot(1, p))
		if cell := target.lhs[j]; !cell.IsWildcard() {
			st.bind(st.slot(0, p), cell.Value())
		}
	}
	// Chase to fixpoint.
	for changed := true; changed && !st.failed; {
		changed = false
		for _, r := range sigma {
			// Single-tuple applications (t,t) for t ∈ {t1, t2}.
			for tup := 0; tup < 2; tup++ {
				fires := true
				for j, cell := range r.lhs {
					if !st.matches(st.slot(tup, r.lhsPos[j]), cell) {
						fires = false
						break
					}
				}
				if fires && !r.rhs.IsWildcard() {
					if st.bind(st.slot(tup, r.rhsPos), r.rhs.Value()) {
						changed = true
					}
				}
			}
			// Pair application (t1, t2).
			fires := true
			for j, cell := range r.lhs {
				a, b := st.slot(0, r.lhsPos[j]), st.slot(1, r.lhsPos[j])
				if !st.equal(a, b) || !st.matches(a, cell) {
					fires = false
					break
				}
			}
			if fires {
				if st.union(st.slot(0, r.rhsPos), st.slot(1, r.rhsPos)) {
					changed = true
				}
				if !r.rhs.IsWildcard() {
					if st.bind(st.slot(0, r.rhsPos), r.rhs.Value()) {
						changed = true
					}
				}
			}
			if st.failed {
				return true // no counterexample can satisfy Σ
			}
		}
	}
	if st.failed {
		return true
	}
	// The canonical instance of the final state satisfies Σ; it refutes
	// Σ ⊨ ϕ iff ϕ's conclusion fails on it.
	a, b := st.slot(0, target.rhsPos), st.slot(1, target.rhsPos)
	if !st.equal(a, b) {
		return false
	}
	return st.matches(a, target.rhs)
}

// MinimalCover returns a cover of Σ with redundant normal-form rows
// removed: the result is a set of normal-form CFDs that implies (and is
// implied by) Σ, from which no member can be dropped without losing a
// consequence. Pattern tableaux blow up the size of CFD sets, so covers
// matter more than for traditional FDs (Section 4.1 of the paper).
func MinimalCover(set []*CFD) []*CFD {
	work := NormalizeSet(set)
	for i := 0; i < len(work); {
		rest := make([]*CFD, 0, len(work)-1)
		rest = append(rest, work[:i]...)
		rest = append(rest, work[i+1:]...)
		if len(rest) > 0 && Implies(rest, work[i]) {
			work = rest
			continue // re-test the element now at index i
		}
		i++
	}
	return work
}
