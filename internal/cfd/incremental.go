package cfd

import (
	"repro/internal/relation"
)

// Incremental violation detection — the natural extension the paper's
// program implies (and that follow-on work formalized): after a batch of
// updates, only the LHS groups touching a changed tuple can gain or lose
// violations, so detection restricted to those groups is complete for the
// delta.

// DetectTouched returns the violations of the CFD whose witnesses involve
// at least one of the touched tuples: single-tuple violations of touched
// tuples, and pair violations within any LHS group containing a touched
// tuple (reported against the group representative, like Detect). The
// result is exactly Detect(in, c) filtered to groups touching the set —
// at the cost of the touched groups only.
func DetectTouched(in *relation.Instance, c *CFD, touched []relation.TID) []Violation {
	return DetectTouchedWithIndex(in, c, relation.BuildIndex(in, c.lhs), touched)
}

// DetectTouchedWithIndex is DetectTouched over a caller-supplied index on
// the CFD's LHS positions (rebuilt if built on different positions); the
// batch engine uses it to share one index across an incremental batch.
func DetectTouchedWithIndex(in *relation.Instance, c *CFD, ix *relation.Index, touched []relation.TID) []Violation {
	ix = lhsIndex(in, c, ix)
	var out []Violation

	for rowIdx, row := range c.tableau {
		matchLHS := func(t relation.Tuple) bool {
			for j, p := range c.lhs {
				if !row.LHS[j].Matches(t[p]) {
					return false
				}
			}
			return true
		}
		// Single-tuple checks on the touched tuples only.
		hasRHSConst := false
		for _, cell := range row.RHS {
			if !cell.IsWildcard() {
				hasRHSConst = true
				break
			}
		}
		if hasRHSConst {
			for _, id := range touched {
				t, ok := in.Tuple(id)
				if !ok || !matchLHS(t) {
					continue
				}
				for j, p := range c.rhs {
					if !row.RHS[j].Matches(t[p]) {
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: SingleTuple, T1: id, T2: id, Attr: p})
					}
				}
			}
		}
		// Pair checks on the groups of the touched tuples.
		seenGroups := make(map[string]bool)
		for _, id := range touched {
			t, ok := in.Tuple(id)
			if !ok {
				continue
			}
			key := t.KeyOn(c.lhs)
			if seenGroups[key] {
				continue
			}
			seenGroups[key] = true
			gids := ix.LookupKey(key)
			if len(gids) < 2 {
				continue
			}
			rep, _ := in.Tuple(gids[0])
			if !matchLHS(rep) {
				continue
			}
			for _, gid := range gids[1:] {
				gt, _ := in.Tuple(gid)
				for _, p := range c.rhs {
					if !gt[p].Equal(rep[p]) {
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: TuplePair, T1: gids[0], T2: gid, Attr: p})
					}
				}
			}
		}
	}
	sortDetectOrder(out)
	return out
}
