package cfd

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// This file holds shared machinery for the static analyses: normal-form
// views of a CFD set, per-attribute constant collection, finite-domain
// detection and fresh-value construction.

// normalRow is a normal-form CFD: single pattern row, single RHS
// attribute, with positions resolved against the schema.
type normalRow struct {
	lhsPos  []int
	lhs     []Cell
	rhsPos  int
	rhs     Cell
	src     *CFD // originating CFD (for reporting)
	srcRow  int
	srcAttr int
}

// normalizeRows flattens a CFD set into normal rows and verifies all CFDs
// share one schema.
func normalizeRows(set []*CFD) ([]normalRow, *relation.Schema, error) {
	if len(set) == 0 {
		return nil, nil, nil
	}
	schema := set[0].schema
	var rows []normalRow
	for _, c := range set {
		if c.schema != schema && c.schema.Name() != schema.Name() {
			return nil, nil, fmt.Errorf("cfd: mixed schemas %s and %s", schema.Name(), c.schema.Name())
		}
		for ri, row := range c.tableau {
			for j, rp := range c.rhs {
				rows = append(rows, normalRow{
					lhsPos:  c.lhs,
					lhs:     row.LHS,
					rhsPos:  rp,
					rhs:     row.RHS[j],
					src:     c,
					srcRow:  ri,
					srcAttr: rp,
				})
			}
		}
	}
	return rows, schema, nil
}

// involvedPositions returns the sorted set of attribute positions used by
// any normal row.
func involvedPositions(rows []normalRow) []int {
	seen := make(map[int]bool)
	for _, r := range rows {
		for _, p := range r.lhsPos {
			seen[p] = true
		}
		seen[r.rhsPos] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// constantsAt collects the distinct constants mentioned at each attribute
// position across all rows (LHS and RHS cells).
func constantsAt(rows []normalRow) map[int][]relation.Value {
	out := make(map[int][]relation.Value)
	add := func(pos int, v relation.Value) {
		for _, w := range out[pos] {
			if w.Equal(v) {
				return
			}
		}
		out[pos] = append(out[pos], v)
	}
	for _, r := range rows {
		for j, cell := range r.lhs {
			if !cell.IsWildcard() {
				add(r.lhsPos[j], cell.Value())
			}
		}
		if !r.rhs.IsWildcard() {
			add(r.rhsPos, r.rhs.Value())
		}
	}
	return out
}

// attrEffectivelyFinite reports whether the attribute's domain is finite
// for the purposes of the static analyses. Boolean attributes are finite
// even when their Domain carries no explicit value list, since bool has
// exactly two values.
func attrEffectivelyFinite(a relation.Attribute) bool {
	return a.Domain.Finite() || a.Domain.Kind() == relation.KindBool
}

// domainValuesOf returns the value list of an effectively finite domain.
func domainValuesOf(a relation.Attribute) []relation.Value {
	if a.Domain.Finite() {
		return a.Domain.Values()
	}
	if a.Domain.Kind() == relation.KindBool {
		return []relation.Value{relation.Bool(false), relation.Bool(true)}
	}
	return nil
}

// HasFiniteDomainAttrs reports whether any attribute position involved in
// the set has an effectively finite domain. The quadratic fast paths of
// Theorem 4.3 apply exactly when this is false.
func HasFiniteDomainAttrs(set []*CFD) bool {
	rows, schema, err := normalizeRows(set)
	if err != nil || schema == nil {
		return false
	}
	for _, p := range involvedPositions(rows) {
		if attrEffectivelyFinite(schema.Attr(p)) {
			return true
		}
	}
	return false
}

// freshValues returns n values of the attribute's kind distinct from every
// value in used (and from each other). It panics for effectively finite
// domains, which never take this path.
func freshValues(a relation.Attribute, used []relation.Value, n int) []relation.Value {
	kind := a.Domain.Kind()
	out := make([]relation.Value, 0, n)
	switch kind {
	case relation.KindInt:
		var max int64
		for _, v := range used {
			if v.Kind() == relation.KindInt && v.IntVal() > max {
				max = v.IntVal()
			}
			if v.Kind() == relation.KindFloat && int64(v.FloatVal()) > max {
				max = int64(v.FloatVal())
			}
		}
		for i := int64(1); int64(len(out)) < int64(n); i++ {
			out = append(out, relation.Int(max+i))
		}
	case relation.KindFloat:
		var max float64
		for _, v := range used {
			if f := v.FloatVal(); f > max {
				max = f
			}
		}
		for i := 1; len(out) < n; i++ {
			out = append(out, relation.Float(max+float64(i)+0.5))
		}
	case relation.KindString:
		taken := make(map[string]bool, len(used))
		for _, v := range used {
			taken[v.StrVal()] = true
		}
		for i := 0; len(out) < n; i++ {
			s := fmt.Sprintf("\x02fresh%d", i)
			if !taken[s] {
				out = append(out, relation.Str(s))
			}
		}
	default:
		panic(fmt.Sprintf("cfd: freshValues on kind %v", kind))
	}
	return out
}

// candidateValues returns the per-attribute candidate set for the exact
// consistency search: the full domain when effectively finite, otherwise
// the mentioned constants plus extra fresh values.
func candidateValues(a relation.Attribute, consts []relation.Value, extra int) []relation.Value {
	if attrEffectivelyFinite(a) {
		return domainValuesOf(a)
	}
	out := append([]relation.Value(nil), consts...)
	out = append(out, freshValues(a, consts, extra)...)
	return out
}
