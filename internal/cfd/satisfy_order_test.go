package cfd

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/relation"
)

// Detect must emit violations in (Row, T1, T2, Attr) order regardless of
// the map-iteration order of the underlying index buckets.
func TestDetectDeterministicOrder(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	// Many violating LHS groups so bucket iteration order matters.
	for i := 0; i < 40; i++ {
		a := relation.Str(string(rune('a' + i%26)))
		in.MustInsert(a, relation.Str("x"))
		in.MustInsert(a, relation.Str("y"))
	}
	key := MustFD(s, []string{"A"}, []string{"B"})
	first := Detect(in, key)
	if len(first) == 0 {
		t.Fatal("expected violations")
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		if first[i].Row != first[j].Row {
			return first[i].Row < first[j].Row
		}
		if first[i].T1 != first[j].T1 {
			return first[i].T1 < first[j].T1
		}
		if first[i].T2 != first[j].T2 {
			return first[i].T2 < first[j].T2
		}
		return first[i].Attr < first[j].Attr
	}) {
		t.Fatal("Detect output is not sorted by (Row, T1, T2, Attr)")
	}
	for run := 0; run < 10; run++ {
		if again := Detect(in, key); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d produced a different order", run)
		}
	}
}

// DetectAll's comparator must break (T1, T2, Attr) ties on Row: a tuple
// clashing with two pattern rows of the same CFD yields two violations
// distinguishable only by Row.
func TestDetectAllOrdersByRow(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Str("c"))
	phi := MustNew(s, []string{"A"}, []string{"B"},
		Row([]Cell{Const(relation.Str("a"))}, []Cell{Const(relation.Str("b1"))}),
		Row([]Cell{Const(relation.Str("a"))}, []Cell{Const(relation.Str("b2"))}),
	)
	vs := DetectAll(in, []*CFD{phi})
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2 (one per pattern row)", len(vs))
	}
	if vs[0].Row != 0 || vs[1].Row != 1 {
		t.Fatalf("violations not ordered by Row: got rows %d, %d", vs[0].Row, vs[1].Row)
	}
}

// DetectWithIndex must tolerate an index built on the wrong positions by
// rebuilding it, so a buggy caller degrades to Detect instead of
// returning garbage.
func TestDetectWithIndexRebuildsOnMismatch(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Str("x"))
	in.MustInsert(relation.Str("a"), relation.Str("y"))
	key := MustFD(s, []string{"A"}, []string{"B"})
	want := Detect(in, key)
	wrong := relation.BuildIndex(in, []int{1}) // B, not the LHS
	if got := DetectWithIndex(in, key, wrong); !reflect.DeepEqual(got, want) {
		t.Fatalf("mismatched index not rebuilt: got %v, want %v", got, want)
	}
	if got := DetectWithIndex(in, key, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("nil index not rebuilt: got %v, want %v", got, want)
	}
}
