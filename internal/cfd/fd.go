package cfd

// This file provides the classical linear-time machinery for the
// traditional-FD special case (Table 1's "FDs: implication O(n)" row):
// attribute-set closure and FD implication. The discovery and repair
// packages reuse it.

// RawFD is a plain functional dependency over attribute positions.
type RawFD struct {
	LHS []int
	RHS []int
}

// AsRawFD converts a CFD that is a traditional FD (single all-wildcard
// row) into a RawFD. The second result is false otherwise.
func AsRawFD(c *CFD) (RawFD, bool) {
	if !c.IsFD() {
		return RawFD{}, false
	}
	return RawFD{LHS: append([]int(nil), c.lhs...), RHS: append([]int(nil), c.rhs...)}, true
}

// AttrClosure computes the closure of the attribute set start under the
// given FDs (the textbook fixpoint, linear in the total size of the FDs
// per pass).
func AttrClosure(fds []RawFD, start []int) map[int]bool {
	closure := make(map[int]bool, len(start))
	for _, p := range start {
		closure[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			all := true
			for _, p := range fd.LHS {
				if !closure[p] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, p := range fd.RHS {
				if !closure[p] {
					closure[p] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// FDImplies decides Σ ⊨ X → Y for traditional FDs via attribute closure.
func FDImplies(fds []RawFD, lhs, rhs []int) bool {
	closure := AttrClosure(fds, lhs)
	for _, p := range rhs {
		if !closure[p] {
			return false
		}
	}
	return true
}

// FDsOf filters a CFD set down to its traditional-FD members as RawFDs.
func FDsOf(set []*CFD) []RawFD {
	var out []RawFD
	for _, c := range set {
		if fd, ok := AsRawFD(c); ok {
			out = append(out, fd)
		}
	}
	return out
}
