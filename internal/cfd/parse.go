package cfd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/relation"
)

// This file implements a line-oriented text format for CFDs, used by the
// command-line tools:
//
//	cfd customer: [CC, zip] -> [street]
//	  44, _ || _
//	cfd customer: [CC, AC, phn] -> [street, city, zip]
//	  44, 131, _ || _, EDI, _
//	  01, 908, _ || _, MH, _
//
// A "cfd <relation>: [X] -> [Y]" header starts a dependency; each
// following indented line is one pattern row with LHS and RHS cells
// separated by "||". Cells are "_" (wildcard) or constants parsed in the
// attribute's kind; string constants may be single-quoted to include
// commas. Blank lines and lines starting with '#' are ignored.

// Parse reads CFDs in the text format. Schemas are resolved by relation
// name through the schemas map.
func Parse(r io.Reader, schemas map[string]*relation.Schema) ([]*CFD, error) {
	sc := bufio.NewScanner(r)
	var out []*CFD
	var cur *CFD
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "cfd ") {
			c, err := parseHeader(text[4:], schemas)
			if err != nil {
				return nil, fmt.Errorf("cfd: line %d: %v", line, err)
			}
			out = append(out, c)
			cur = c
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("cfd: line %d: pattern row before any 'cfd' header", line)
		}
		row, err := parseRow(text, cur)
		if err != nil {
			return nil, fmt.Errorf("cfd: line %d: %v", line, err)
		}
		if err := cur.AddRow(row); err != nil {
			return nil, fmt.Errorf("cfd: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, c := range out {
		if len(c.Tableau()) == 0 {
			return nil, fmt.Errorf("cfd: %s has an empty tableau", c)
		}
	}
	return out, nil
}

// ParseString is Parse over a string.
func ParseString(s string, schemas map[string]*relation.Schema) ([]*CFD, error) {
	return Parse(strings.NewReader(s), schemas)
}

func parseHeader(s string, schemas map[string]*relation.Schema) (*CFD, error) {
	relName, rest, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("header %q: want '<relation>: [X] -> [Y]'", s)
	}
	relName = strings.TrimSpace(relName)
	schema, ok := schemas[relName]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", relName)
	}
	lhsPart, rhsPart, ok := strings.Cut(rest, "->")
	if !ok {
		return nil, fmt.Errorf("header %q: missing '->'", s)
	}
	lhs, err := parseAttrList(lhsPart)
	if err != nil {
		return nil, err
	}
	rhs, err := parseAttrList(rhsPart)
	if err != nil {
		return nil, err
	}
	return New(schema, lhs, rhs)
}

func parseAttrList(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("attribute list %q: want [A, B, ...]", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, fmt.Errorf("empty attribute list")
	}
	parts := strings.Split(inner, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
		if out[i] == "" {
			return nil, fmt.Errorf("attribute list %q: empty attribute", s)
		}
	}
	return out, nil
}

func parseRow(s string, c *CFD) (PatternRow, error) {
	lhsPart, rhsPart, ok := strings.Cut(s, "||")
	if !ok {
		return PatternRow{}, fmt.Errorf("pattern row %q: missing '||'", s)
	}
	lhs, err := parseCells(lhsPart, c.Schema(), c.LHS())
	if err != nil {
		return PatternRow{}, err
	}
	rhs, err := parseCells(rhsPart, c.Schema(), c.RHS())
	if err != nil {
		return PatternRow{}, err
	}
	return PatternRow{LHS: lhs, RHS: rhs}, nil
}

// splitCells splits a comma-separated cell list honoring single quotes.
// Quote characters are preserved so that a quoted "_" is not mistaken for
// the wildcard; parseCells strips them.
func splitCells(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range s {
		switch {
		case r == '\'':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	out = append(out, cur.String())
	return out
}

func parseCells(s string, schema *relation.Schema, pos []int) ([]Cell, error) {
	raw := splitCells(s)
	if len(raw) != len(pos) {
		return nil, fmt.Errorf("pattern %q: %d cells, want %d", strings.TrimSpace(s), len(raw), len(pos))
	}
	out := make([]Cell, len(raw))
	for i, cellText := range raw {
		cellText = strings.TrimSpace(cellText)
		if cellText == "_" {
			out[i] = Any()
			continue
		}
		if len(cellText) >= 2 && strings.HasPrefix(cellText, "'") && strings.HasSuffix(cellText, "'") {
			cellText = cellText[1 : len(cellText)-1]
		}
		kind := schema.Attr(pos[i]).Domain.Kind()
		v, err := relation.ParseValue(kind, cellText)
		if err != nil {
			return nil, fmt.Errorf("cell %q for %s: %v", cellText, schema.Attr(pos[i]).Name, err)
		}
		out[i] = Const(v)
	}
	return out, nil
}

// Format renders a CFD set in the Parse text format.
func Format(w io.Writer, set []*CFD) error {
	for _, c := range set {
		if _, err := fmt.Fprintf(w, "cfd %s: [%s] -> [%s]\n",
			c.Schema().Name(),
			strings.Join(c.LHSNames(), ", "),
			strings.Join(c.RHSNames(), ", ")); err != nil {
			return err
		}
		for _, row := range c.Tableau() {
			if _, err := fmt.Fprintf(w, "  %s\n", formatRow(row)); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatRow(r PatternRow) string {
	return formatCells(r.LHS) + " || " + formatCells(r.RHS)
}

func formatCells(cs []Cell) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		switch {
		case c.IsWildcard():
			parts[i] = "_"
		case c.Value().Kind() == relation.KindString && (c.Value().StrVal() == "_" || strings.ContainsAny(c.Value().StrVal(), ",|")):
			parts[i] = "'" + c.Value().StrVal() + "'"
		default:
			parts[i] = c.Value().String()
		}
	}
	return strings.Join(parts, ", ")
}
