package cfd_test

import (
	"strings"
	"testing"

	"repro/internal/cfd"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// TestFigure1FDsHold reproduces the paper's first claim about Figure 1:
// D0 satisfies the traditional FDs f1 and f2, so "no errors are found"
// when only FDs are used.
func TestFigure1FDsHold(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	if !cfd.Satisfies(d0, paperdata.F1(s)) {
		t.Error("D0 should satisfy f1 = [CC,AC,phn] → [street,city,zip]")
	}
	if !cfd.Satisfies(d0, paperdata.F2(s)) {
		t.Error("D0 should satisfy f2 = [CC,AC] → [city]")
	}
}

// TestFigure2CFDs reproduces the Figure 2 claims: D0 satisfies ϕ3 but
// neither ϕ1 nor ϕ2.
func TestFigure2CFDs(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	if cfd.Satisfies(d0, paperdata.Phi1(s)) {
		t.Error("D0 should violate ϕ1 (t1, t2 share UK zip but differ in street)")
	}
	if cfd.Satisfies(d0, paperdata.Phi2(s)) {
		t.Error("D0 should violate ϕ2 (city must be EDI for CC=44, AC=131)")
	}
	if !cfd.Satisfies(d0, paperdata.Phi3(s)) {
		t.Error("D0 should satisfy ϕ3")
	}
}

// TestFigure2ViolationDetail checks the precise violations the paper
// narrates: t1 and t2 violate cfd1 (pair) and each of t1, t2 violates
// cfd2 (single-tuple, city ≠ EDI); t3 violates cfd3 (city ≠ MH).
func TestFigure2ViolationDetail(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()

	v1 := cfd.Detect(d0, paperdata.Phi1(s))
	if len(v1) != 1 {
		t.Fatalf("ϕ1 violations = %v, want exactly one pair", v1)
	}
	if v1[0].Kind != cfd.TuplePair || v1[0].T1 != 0 || v1[0].T2 != 1 {
		t.Errorf("ϕ1 violation = %+v, want pair (t1,t2) = TIDs (0,1)", v1[0])
	}
	if s.Attr(v1[0].Attr).Name != "street" {
		t.Errorf("ϕ1 clash on %s, want street", s.Attr(v1[0].Attr).Name)
	}

	v2 := cfd.Detect(d0, paperdata.Phi2(s))
	single := map[relation.TID]int{}
	for _, v := range v2 {
		if v.Kind == cfd.SingleTuple {
			single[v.T1]++
			if s.Attr(v.Attr).Name != "city" {
				t.Errorf("ϕ2 clash on %s, want city", s.Attr(v.Attr).Name)
			}
		}
	}
	if single[0] == 0 || single[1] == 0 || single[2] == 0 {
		t.Errorf("ϕ2 single-tuple violations per TID = %v; want all of t1,t2,t3 flagged", single)
	}
}

func TestDetectAllSortsAndViolatingTIDs(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	vs := cfd.DetectAll(d0, []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s)})
	if len(vs) == 0 {
		t.Fatal("no violations detected")
	}
	for i := 1; i < len(vs); i++ {
		if vs[i].T1 < vs[i-1].T1 {
			t.Fatal("DetectAll output not sorted by T1")
		}
	}
	tids := cfd.ViolatingTIDs(vs)
	if len(tids) != 3 {
		t.Errorf("violating TIDs = %v; the paper says none of D0's tuples is error-free", tids)
	}
}

func TestTraditionalFDAsCFD(t *testing.T) {
	s := paperdata.CustomerSchema()
	f := paperdata.F2(s)
	if !f.IsFD() {
		t.Error("all-wildcard single-row CFD should report IsFD")
	}
	if paperdata.Phi1(s).IsFD() {
		t.Error("ϕ1 is not a traditional FD")
	}
	raw, ok := cfd.AsRawFD(f)
	if !ok || len(raw.LHS) != 2 || len(raw.RHS) != 1 {
		t.Errorf("AsRawFD = %+v, %v", raw, ok)
	}
	if _, ok := cfd.AsRawFD(paperdata.Phi1(s)); ok {
		t.Error("AsRawFD should fail on a proper CFD")
	}
}

func TestCFDConstructorValidation(t *testing.T) {
	s := paperdata.CustomerSchema()
	if _, err := cfd.New(s, []string{"CC"}, nil); err == nil {
		t.Error("want error for empty RHS")
	}
	if _, err := cfd.New(s, []string{"nope"}, []string{"city"}); err == nil {
		t.Error("want error for unknown LHS attribute")
	}
	if _, err := cfd.New(s, []string{"CC"}, []string{"city"},
		cfd.Row([]cfd.Cell{cfd.Any(), cfd.Any()}, []cfd.Cell{cfd.Any()})); err == nil {
		t.Error("want error for pattern arity mismatch")
	}
	// Constant outside a finite domain.
	fs := relation.MustSchema("r", relation.FiniteAttr("A", relation.FiniteDom(relation.KindString, relation.Str("x"))))
	if _, err := cfd.New(fs, []string{"A"}, []string{"A"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("y"))}, []cfd.Cell{cfd.Any()})); err == nil {
		t.Error("want error for constant outside finite domain")
	}
}

func TestNormalize(t *testing.T) {
	s := paperdata.CustomerSchema()
	phi2 := paperdata.Phi2(s)
	norm := phi2.Normalize()
	if len(norm) != 9 { // 3 rows × 3 RHS attributes
		t.Fatalf("normalized pieces = %d, want 9", len(norm))
	}
	for _, n := range norm {
		if len(n.RHS()) != 1 || len(n.Tableau()) != 1 {
			t.Errorf("piece not in normal form: %v", n)
		}
	}
	// Normalization preserves satisfaction on D0's complement: build a
	// clean instance and check both directions.
	d0 := paperdata.Figure1()
	allSat := true
	for _, n := range norm {
		if !cfd.Satisfies(d0, n) {
			allSat = false
		}
	}
	if allSat != cfd.Satisfies(d0, phi2) {
		t.Error("normalization changed satisfaction")
	}
}

func TestCellSemantics(t *testing.T) {
	c := cfd.Const(relation.Str("EDI"))
	w := cfd.Any()
	if !w.Matches(relation.Str("anything")) {
		t.Error("wildcard must match everything")
	}
	if !c.Matches(relation.Str("EDI")) || c.Matches(relation.Str("NYC")) {
		t.Error("constant cell match wrong")
	}
	if !c.MatchesCell(w) || !w.MatchesCell(c) || !w.MatchesCell(w) {
		t.Error("≍ with wildcard cells wrong")
	}
	if c.MatchesCell(cfd.Const(relation.Str("NYC"))) {
		t.Error("distinct constants must not ≍")
	}
	if !c.Equal(cfd.Const(relation.Str("EDI"))) || c.Equal(w) {
		t.Error("cell equality wrong")
	}
	if c.String() != "EDI" || w.String() != "_" {
		t.Errorf("cell strings: %q, %q", c, w)
	}
}

func TestAddRowAndClone(t *testing.T) {
	s := paperdata.CustomerSchema()
	phi := paperdata.Phi1(s)
	cp := phi.Clone()
	if err := cp.AddRow(cfd.Row(
		[]cfd.Cell{cfd.Const(relation.Int(1)), cfd.Any()},
		[]cfd.Cell{cfd.Any()})); err != nil {
		t.Fatal(err)
	}
	if len(phi.Tableau()) != 1 || len(cp.Tableau()) != 2 {
		t.Error("clone shares tableau with original")
	}
	if err := cp.AddRow(cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Any()})); err == nil {
		t.Error("want arity error from AddRow")
	}
}

func TestEmptyInstanceSatisfiesEverything(t *testing.T) {
	s := paperdata.CustomerSchema()
	empty := relation.NewInstance(s)
	for _, c := range []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.F1(s)} {
		if !cfd.Satisfies(empty, c) {
			t.Errorf("empty instance must satisfy %v", c)
		}
	}
}

func TestSatisfactionClosedUnderSubsets(t *testing.T) {
	// The foundation of the single/two-tuple characterizations: removing
	// tuples never breaks satisfaction.
	d0 := paperdata.Figure1()
	s := d0.Schema()
	deps := []*cfd.CFD{paperdata.Phi3(s), paperdata.F1(s), paperdata.F2(s)}
	for _, dep := range deps {
		if !cfd.Satisfies(d0, dep) {
			t.Fatalf("precondition: D0 ⊨ %v", dep)
		}
	}
	for _, id := range d0.IDs() {
		sub := d0.Clone()
		sub.Delete(id)
		for _, dep := range deps {
			if !cfd.Satisfies(sub, dep) {
				t.Errorf("subset (without %d) violates %v", id, dep)
			}
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	s := paperdata.CustomerSchema()
	schemas := map[string]*relation.Schema{"customer": s}
	text := `
# Figure 2 of the paper
cfd customer: [CC, zip] -> [street]
  44, _ || _

cfd customer: [CC, AC, phn] -> [street, city, zip]
  _, _, _ || _, _, _
  44, 131, _ || _, EDI, _
  1, 908, _ || _, MH, _
`
	set, err := cfd.ParseString(text, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("parsed %d CFDs, want 2", len(set))
	}
	d0 := paperdata.Figure1()
	if cfd.Satisfies(d0, set[0]) || cfd.Satisfies(d0, set[1]) {
		t.Error("parsed CFDs should behave like ϕ1, ϕ2 (violated by D0)")
	}
	var sb strings.Builder
	if err := cfd.Format(&sb, set); err != nil {
		t.Fatal(err)
	}
	again, err := cfd.ParseString(sb.String(), schemas)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if len(again) != 2 || again[1].String() != set[1].String() {
		t.Errorf("round trip mismatch:\n%v\n%v", set[1], again[1])
	}
}

func TestParseQuotedAndErrors(t *testing.T) {
	s := paperdata.CustomerSchema()
	schemas := map[string]*relation.Schema{"customer": s}
	ok, err := cfd.ParseString("cfd customer: [city] -> [street]\n  'EH4, flat' || _\n", schemas)
	if err != nil {
		t.Fatal(err)
	}
	if got := ok[0].Tableau()[0].LHS[0].Value().StrVal(); got != "EH4, flat" {
		t.Errorf("quoted constant = %q", got)
	}
	bad := []string{
		"cfd nope: [A] -> [B]\n",
		"cfd customer [CC] -> [city]\n",
		"cfd customer: [CC] [city]\n",
		"cfd customer: [] -> [city]\n",
		"  44 || _\n",
		"cfd customer: [CC] -> [city]\n  44\n",
		"cfd customer: [CC] -> [city]\n  xx || _\n",
		"cfd customer: [CC] -> [city]\n",
	}
	for _, text := range bad {
		if _, err := cfd.ParseString(text, schemas); err == nil {
			t.Errorf("want parse error for %q", text)
		}
	}
}
