package cfd_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/gen"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

func TestDetectTouchedFindsNewViolations(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 200, Seed: 13, ErrorRate: 0})
	s := in.Schema()
	phi1 := paperdata.Phi1(s)
	if len(cfd.Detect(in, phi1)) != 0 {
		t.Fatal("clean data expected")
	}
	// Corrupt one UK tuple's street: its zip group becomes dirty.
	var victim relation.TID = -1
	cc := s.MustLookup("CC")
	street := s.MustLookup("street")
	for _, id := range in.IDs() {
		tu, _ := in.Tuple(id)
		if tu[cc].IntVal() == 44 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Fatal("no UK tuple generated")
	}
	in.Update(victim, street, relation.Str("Corrupted Way"))

	full := cfd.Detect(in, phi1)
	inc := cfd.DetectTouched(in, phi1, []relation.TID{victim})
	if len(full) == 0 {
		t.Fatal("corruption must violate ϕ1 (zip groups are shared)")
	}
	if len(inc) != len(full) {
		t.Errorf("incremental found %d violations, full %d", len(inc), len(full))
	}
	// Touching an unrelated clean tuple reports nothing.
	var clean relation.TID = -1
	for _, id := range in.IDs() {
		tu, _ := in.Tuple(id)
		if id != victim && tu[cc].IntVal() != 44 {
			clean = id
			break
		}
	}
	if got := cfd.DetectTouched(in, phi1, []relation.TID{clean}); len(got) != 0 {
		t.Errorf("clean US tuple reported %v", got)
	}
	// Deleted TIDs are ignored gracefully.
	in.Delete(victim)
	_ = cfd.DetectTouched(in, phi1, []relation.TID{victim})
}

func TestDetectTouchedSingleTupleKind(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	phi2 := paperdata.Phi2(s)
	// Each of t1, t2, t3 has a single-tuple city violation; touching t3
	// alone reports only its group.
	inc := cfd.DetectTouched(d0, phi2, []relation.TID{2})
	foundT3 := false
	for _, v := range inc {
		if v.Kind == cfd.SingleTuple && v.T1 == 2 {
			foundT3 = true
		}
		if v.T1 == 0 && v.T2 == 0 {
			t.Errorf("t1's own violation reported when touching t3: %v", v)
		}
	}
	if !foundT3 {
		t.Errorf("t3's violation missing: %v", inc)
	}
}
