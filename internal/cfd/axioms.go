package cfd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// This file implements a sound inference system for CFDs in normal form,
// reflecting the finite axiomatizability result of Theorem 4.6(a). Every
// rule is sound for the CFD semantics; soundness is property-tested
// against the semantic decision procedure (Implies). The system is used to
// derive new cleaning rules syntactically, the way Section 4.1 motivates
// ("it reveals insight into implication analysis and helps us understand
// how cleaning rules interact").
//
// Rules, on normal-form CFDs (single pattern row, single RHS attribute):
//
//	Refl:   ⊢ (X∪A → A, tp)            when tp[A_RHS] ≍ tp[A_LHS]
//	Aug:    (X → A, tp) ⊢ (XB → A, tp+'_')
//	Tight:  (X → A, tp) ⊢ (X → A, tp')  when tp'[X] ⊑ tp[X] (more specific)
//	Weak:   (X → A, tp‖c) ⊢ (X → A, tp‖_)
//	Trans:  (X → B, tp1), (BZ → A, tp2) ⊢ (XZ → A, tp1[X]⊓tp2[Z] ‖ tp2[A])
//	        when tp2[B] is '_' or equals the constant tp1[B_RHS]
//
// where ⊑ is "each cell equal or a constant refining '_'" and ⊓ is the
// cell-wise meet (constant beats wildcard; incompatible constants make the
// rule inapplicable).

// Derivation records one inference step for provenance.
type Derivation struct {
	Rule    string
	From    []*CFD
	Derived *CFD
}

// String renders the step.
func (d Derivation) String() string {
	froms := make([]string, len(d.From))
	for i, f := range d.From {
		froms[i] = f.String()
	}
	return fmt.Sprintf("%s: %s ⊢ %s", d.Rule, strings.Join(froms, " ; "), d.Derived)
}

// cellMeet returns the meet of two pattern cells: the more specific cell,
// or ok=false when both are distinct constants.
func cellMeet(a, b Cell) (Cell, bool) {
	switch {
	case a.IsWildcard():
		return b, true
	case b.IsWildcard():
		return a, true
	case a.Value().Equal(b.Value()):
		return a, true
	default:
		return Cell{}, false
	}
}

// normalKey canonicalizes a normal-form CFD for deduplication: LHS
// attributes sorted by position with their cells.
func normalKey(c *CFD) string {
	row := c.tableau[0]
	type pc struct {
		pos  int
		cell Cell
	}
	ps := make([]pc, len(c.lhs))
	for i, p := range c.lhs {
		ps[i] = pc{p, row.LHS[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].pos < ps[j].pos })
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "%d=%s|", p.pos, p.cell)
	}
	fmt.Fprintf(&b, ">%d=%s", c.rhs[0], row.RHS[0])
	return b.String()
}

// Closure computes the set of normal-form CFDs derivable from Σ with the
// inference rules, bounded by maxDerived results (the closure is infinite
// under Aug/Tight without a bound; derivations that only add attributes or
// constants already mentioned in Σ are generated, which keeps the space
// finite and relevant). It returns the derived CFDs and their derivations.
func Closure(set []*CFD, maxDerived int) ([]*CFD, []Derivation) {
	work := NormalizeSet(set)
	seen := make(map[string]bool, len(work))
	for _, c := range work {
		seen[normalKey(c)] = true
	}
	var derivations []Derivation

	add := func(rule string, from []*CFD, c *CFD) bool {
		k := normalKey(c)
		if seen[k] {
			return false
		}
		seen[k] = true
		work = append(work, c)
		derivations = append(derivations, Derivation{Rule: rule, From: from, Derived: c})
		return true
	}

	if len(work) == 0 {
		return nil, nil
	}
	schema := work[0].schema

	// Constants mentioned per position, for Tight instantiation.
	rows, _, _ := normalizeRows(work)
	consts := constantsAt(rows)

	for pass := 0; ; pass++ {
		grew := false
		n := len(work)
		for i := 0; i < n && len(derivations) < maxDerived; i++ {
			c1 := work[i]
			row1 := c1.tableau[0]

			// Weak: drop an RHS constant to '_'.
			if !row1.RHS[0].IsWildcard() {
				d := c1.Clone()
				d.tableau[0].RHS[0] = Any()
				if add("Weak", []*CFD{c1}, d) {
					grew = true
				}
			}

			// Tight: refine one LHS wildcard to a mentioned constant.
			for j, cell := range row1.LHS {
				if !cell.IsWildcard() {
					continue
				}
				for _, v := range consts[c1.lhs[j]] {
					if len(derivations) >= maxDerived {
						break
					}
					d := c1.Clone()
					d.tableau[0].LHS[j] = Const(v)
					if add("Tight", []*CFD{c1}, d) {
						grew = true
					}
				}
			}

			// Trans with every other rule.
			for k := 0; k < n && len(derivations) < maxDerived; k++ {
				c2 := work[k]
				row2 := c2.tableau[0]
				// c1: X → B; c2: Z → A with B ∈ Z.
				b := c1.rhs[0]
				bIdx := -1
				for j, p := range c2.lhs {
					if p == b {
						bIdx = j
						break
					}
				}
				if bIdx < 0 {
					continue
				}
				bCell := row2.LHS[bIdx]
				if !bCell.IsWildcard() {
					if row1.RHS[0].IsWildcard() || !row1.RHS[0].Value().Equal(bCell.Value()) {
						continue
					}
				}
				// Derived LHS: X ∪ (Z \ {B}), cell-wise meet on overlap.
				posCell := make(map[int]Cell)
				ok := true
				for j, p := range c1.lhs {
					posCell[p] = row1.LHS[j]
				}
				for j, p := range c2.lhs {
					if p == b {
						continue
					}
					if prev, exists := posCell[p]; exists {
						m, compat := cellMeet(prev, row2.LHS[j])
						if !compat {
							ok = false
							break
						}
						posCell[p] = m
					} else {
						posCell[p] = row2.LHS[j]
					}
				}
				if !ok || len(posCell) == 0 {
					continue
				}
				var lhsNames []string
				var lhsCells []Cell
				ps := make([]int, 0, len(posCell))
				for p := range posCell {
					ps = append(ps, p)
				}
				sort.Ints(ps)
				for _, p := range ps {
					lhsNames = append(lhsNames, schema.Attr(p).Name)
					lhsCells = append(lhsCells, posCell[p])
				}
				d, err := New(schema, lhsNames, []string{schema.Attr(c2.rhs[0]).Name},
					PatternRow{LHS: lhsCells, RHS: []Cell{row2.RHS[0]}})
				if err != nil {
					continue
				}
				if add("Trans", []*CFD{c1, c2}, d) {
					grew = true
				}
			}
		}
		if !grew || len(derivations) >= maxDerived {
			break
		}
	}
	return work, derivations
}

// Reflexive builds the axiom-scheme instance (X∪{A} → A, tp) with tp[A]
// identical on both sides; it is trivially valid.
func Reflexive(schema *relation.Schema, lhs []string, a string, cells []Cell, aCell Cell) (*CFD, error) {
	names := append(append([]string(nil), lhs...), a)
	row := PatternRow{LHS: append(append([]Cell(nil), cells...), aCell), RHS: []Cell{aCell}}
	return New(schema, names, []string{a}, row)
}

// Augment applies the Aug rule: extend the LHS of a normal-form CFD with
// an extra attribute carrying '_'.
func Augment(c *CFD, attr string) (*CFD, error) {
	if len(c.tableau) != 1 || len(c.rhs) != 1 {
		return nil, fmt.Errorf("cfd: Augment needs normal form")
	}
	for _, n := range c.LHSNames() {
		if n == attr {
			return nil, fmt.Errorf("cfd: attribute %q already in LHS", attr)
		}
	}
	names := append(append([]string(nil), c.LHSNames()...), attr)
	row := PatternRow{
		LHS: append(append([]Cell(nil), c.tableau[0].LHS...), Any()),
		RHS: append([]Cell(nil), c.tableau[0].RHS...),
	}
	return New(c.schema, names, c.RHSNames(), row)
}
