// Package cfd implements conditional functional dependencies (CFDs) as
// defined in Section 2.1 of Fan (PODS 2008): a CFD on a relation schema R
// is a pair R(X → Y, Tp) of an embedded functional dependency X → Y and a
// pattern tableau Tp whose rows mix constants and the unnamed variable '_'.
// An instance D satisfies the CFD iff for every pattern row tp and every
// pair of tuples t1, t2 ∈ D:
//
//	t1[X] = t2[X] ≍ tp[X]  ⇒  t1[Y] = t2[Y] ≍ tp[Y]
//
// where v ≍ c holds iff v = c, and v ≍ _ always holds.
//
// The package provides satisfaction checking, violation detection
// (single-tuple constant violations and tuple-pair variable violations),
// normalization, the consistency and implication analyses of Section 4.1
// (with the quadratic special-case algorithms of Theorem 4.3 and the exact
// exponential procedures matching the NP/coNP bounds of Theorems 4.1 and
// 4.2), a sound inference system, and minimal covers.
package cfd

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Cell is one entry of a pattern tuple: either a constant from the
// attribute's domain or the unnamed variable '_'.
type Cell struct {
	wildcard bool
	value    relation.Value
}

// Const returns a constant pattern cell.
func Const(v relation.Value) Cell { return Cell{value: v} }

// Any returns the unnamed-variable cell '_'.
func Any() Cell { return Cell{wildcard: true} }

// IsWildcard reports whether the cell is '_'.
func (c Cell) IsWildcard() bool { return c.wildcard }

// Value returns the constant of a non-wildcard cell.
func (c Cell) Value() relation.Value { return c.value }

// Matches implements the ≍ operator of the paper on a single value.
func (c Cell) Matches(v relation.Value) bool {
	return c.wildcard || c.value.Equal(v)
}

// MatchesCell implements ≍ between two pattern cells (used by the
// inference system): two cells match iff either is '_' or their constants
// are equal.
func (c Cell) MatchesCell(d Cell) bool {
	return c.wildcard || d.wildcard || c.value.Equal(d.value)
}

// Equal reports syntactic equality of cells.
func (c Cell) Equal(d Cell) bool {
	if c.wildcard != d.wildcard {
		return false
	}
	return c.wildcard || c.value.Equal(d.value)
}

// String renders the cell ('_' or the constant).
func (c Cell) String() string {
	if c.wildcard {
		return "_"
	}
	return c.value.String()
}

// PatternRow is one pattern tuple tp of a tableau, split into its X
// (LHS) and Y (RHS) parts.
type PatternRow struct {
	LHS []Cell
	RHS []Cell
}

// Row is a convenience constructor for a pattern row.
func Row(lhs []Cell, rhs []Cell) PatternRow { return PatternRow{LHS: lhs, RHS: rhs} }

// String renders the row as "l1, l2 || r1".
func (r PatternRow) String() string {
	return cellsString(r.LHS) + " || " + cellsString(r.RHS)
}

func cellsString(cs []Cell) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}

// CFD is a conditional functional dependency R(X → Y, Tp).
type CFD struct {
	schema  *relation.Schema
	lhs     []int // positions of X in schema order of declaration
	rhs     []int // positions of Y
	tableau []PatternRow
}

// New builds a CFD over schema with the named LHS and RHS attributes and
// the given pattern rows. Every row must have len(LHS) == len(lhs
// attributes) and len(RHS) == len(rhs attributes); constants must be
// admissible in the attribute domains.
func New(schema *relation.Schema, lhs, rhs []string, rows ...PatternRow) (*CFD, error) {
	if len(rhs) == 0 {
		return nil, fmt.Errorf("cfd: %s: empty RHS", schema.Name())
	}
	lp, err := schema.Positions(lhs)
	if err != nil {
		return nil, fmt.Errorf("cfd: %v", err)
	}
	rp, err := schema.Positions(rhs)
	if err != nil {
		return nil, fmt.Errorf("cfd: %v", err)
	}
	c := &CFD{schema: schema, lhs: lp, rhs: rp}
	for i, r := range rows {
		if len(r.LHS) != len(lp) || len(r.RHS) != len(rp) {
			return nil, fmt.Errorf("cfd: %s row %d: pattern arity (%d||%d), want (%d||%d)",
				schema.Name(), i, len(r.LHS), len(r.RHS), len(lp), len(rp))
		}
		for j, cell := range r.LHS {
			if !cell.IsWildcard() && !schema.Attr(lp[j]).Domain.Contains(cell.Value()) {
				return nil, fmt.Errorf("cfd: %s row %d: constant %v not in dom(%s)",
					schema.Name(), i, cell.Value(), schema.Attr(lp[j]).Name)
			}
		}
		for j, cell := range r.RHS {
			if !cell.IsWildcard() && !schema.Attr(rp[j]).Domain.Contains(cell.Value()) {
				return nil, fmt.Errorf("cfd: %s row %d: constant %v not in dom(%s)",
					schema.Name(), i, cell.Value(), schema.Attr(rp[j]).Name)
			}
		}
		c.tableau = append(c.tableau, PatternRow{
			LHS: append([]Cell(nil), r.LHS...),
			RHS: append([]Cell(nil), r.RHS...),
		})
	}
	return c, nil
}

// MustNew is New that panics on error; for tests and fixtures.
func MustNew(schema *relation.Schema, lhs, rhs []string, rows ...PatternRow) *CFD {
	c, err := New(schema, lhs, rhs, rows...)
	if err != nil {
		panic(err)
	}
	return c
}

// FD builds the traditional functional dependency X → Y as the special
// case of a CFD whose tableau is the single all-wildcard row (the paper's
// observation that FDs ⊂ CFDs).
func FD(schema *relation.Schema, lhs, rhs []string) (*CFD, error) {
	row := PatternRow{LHS: make([]Cell, len(lhs)), RHS: make([]Cell, len(rhs))}
	for i := range row.LHS {
		row.LHS[i] = Any()
	}
	for i := range row.RHS {
		row.RHS[i] = Any()
	}
	return New(schema, lhs, rhs, row)
}

// MustFD is FD that panics on error.
func MustFD(schema *relation.Schema, lhs, rhs []string) *CFD {
	c, err := FD(schema, lhs, rhs)
	if err != nil {
		panic(err)
	}
	return c
}

// Schema returns the schema the CFD is defined on.
func (c *CFD) Schema() *relation.Schema { return c.schema }

// LHS returns the positions of the X attributes.
func (c *CFD) LHS() []int { return c.lhs }

// RHS returns the positions of the Y attributes.
func (c *CFD) RHS() []int { return c.rhs }

// LHSNames returns the X attribute names.
func (c *CFD) LHSNames() []string { return c.names(c.lhs) }

// RHSNames returns the Y attribute names.
func (c *CFD) RHSNames() []string { return c.names(c.rhs) }

func (c *CFD) names(pos []int) []string {
	out := make([]string, len(pos))
	for i, p := range pos {
		out[i] = c.schema.Attr(p).Name
	}
	return out
}

// Tableau returns the pattern rows. The result must not be modified.
func (c *CFD) Tableau() []PatternRow { return c.tableau }

// AddRow appends a pattern row (validated like New).
func (c *CFD) AddRow(r PatternRow) error {
	n, err := New(c.schema, c.LHSNames(), c.RHSNames(), r)
	if err != nil {
		return err
	}
	c.tableau = append(c.tableau, n.tableau[0])
	return nil
}

// IsFD reports whether the CFD is a traditional FD: a single all-wildcard
// pattern row.
func (c *CFD) IsFD() bool {
	if len(c.tableau) != 1 {
		return false
	}
	for _, cell := range c.tableau[0].LHS {
		if !cell.IsWildcard() {
			return false
		}
	}
	for _, cell := range c.tableau[0].RHS {
		if !cell.IsWildcard() {
			return false
		}
	}
	return true
}

// String renders the CFD as R([X] -> [Y], { row; row }).
func (c *CFD) String() string {
	rows := make([]string, len(c.tableau))
	for i, r := range c.tableau {
		rows[i] = r.String()
	}
	return fmt.Sprintf("%s([%s] -> [%s], {%s})",
		c.schema.Name(),
		strings.Join(c.LHSNames(), ", "),
		strings.Join(c.RHSNames(), ", "),
		strings.Join(rows, "; "))
}

// Clone returns a deep copy.
func (c *CFD) Clone() *CFD {
	out := &CFD{
		schema: c.schema,
		lhs:    append([]int(nil), c.lhs...),
		rhs:    append([]int(nil), c.rhs...),
	}
	for _, r := range c.tableau {
		out.tableau = append(out.tableau, PatternRow{
			LHS: append([]Cell(nil), r.LHS...),
			RHS: append([]Cell(nil), r.RHS...),
		})
	}
	return out
}

// Normalize returns an equivalent set of CFDs in normal form: each result
// has a single RHS attribute and a single pattern row. Normal form is what
// the static analyses operate on.
func (c *CFD) Normalize() []*CFD {
	var out []*CFD
	for _, row := range c.tableau {
		for j, rp := range c.rhs {
			n := &CFD{
				schema:  c.schema,
				lhs:     append([]int(nil), c.lhs...),
				rhs:     []int{rp},
				tableau: []PatternRow{{LHS: append([]Cell(nil), row.LHS...), RHS: []Cell{row.RHS[j]}}},
			}
			out = append(out, n)
		}
	}
	return out
}

// NormalizeSet normalizes every CFD in a set.
func NormalizeSet(set []*CFD) []*CFD {
	var out []*CFD
	for _, c := range set {
		out = append(out, c.Normalize()...)
	}
	return out
}
