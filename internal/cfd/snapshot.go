package cfd

import (
	"slices"

	"repro/internal/relation"
)

// Snapshot-backed violation detection: the columnar fast path of the
// detection engine. These entry points mirror the *WithIndex primitives
// exactly — same violations, same order — but run over a
// relation.Snapshot and relation.CodeIndex.
//
// The columnar representation is applied where it pays: grouping and LHS
// pattern matching run entirely on dictionary codes (pattern constants
// compile to codes once per tableau row, matching is an integer compare
// against a hoisted column, and a constant missing from its column
// prunes the whole pattern row), and the single-tuple scan is a linear
// walk of the dense rows in ascending TID order. RHS agreement checks
// within a group read the frozen tuple array directly (an array access,
// not a map lookup): LHS groups are overwhelmingly small, so interning a
// high-cardinality RHS column for a handful of comparisons would cost
// more than the Value.Equal calls it replaces.
//
// The string-keyed path (Detect, DetectWithIndex, ...) remains the
// compatibility/oracle path; randomized tests in internal/detect assert
// byte-identical output between the two.

// codedCell is a pattern cell compiled against an attribute dictionary:
// either the wildcard, or a constant's code, or a constant that never
// occurs in the column (ok == false), which matches no tuple.
type codedCell struct {
	wild bool
	ok   bool
	code uint32
}

// compileCells compiles pattern cells against the dictionaries of their
// attribute positions. allConst reports whether every constant cell was
// found in its dictionary; when false for an LHS, no tuple can match the
// pattern row at all.
func compileCells(snap *relation.Snapshot, pos []int, cells []Cell) (out []codedCell, allConst bool) {
	out = make([]codedCell, len(cells))
	allConst = true
	for j, cell := range cells {
		if cell.IsWildcard() {
			out[j] = codedCell{wild: true}
			continue
		}
		v := cell.Value()
		if v.Kind() == relation.KindFloat && v.FloatVal() != v.FloatVal() {
			// A NaN constant Equals nothing (Cell.Matches is Value.Equal),
			// so it matches no tuple — even though the dictionary folds
			// all NaN *data* values onto one shared code.
			out[j] = codedCell{}
			allConst = false
			continue
		}
		code, ok := snap.Dict(pos[j]).Code(v)
		out[j] = codedCell{ok: ok, code: code}
		if !ok {
			allConst = false
		}
	}
	return out, allConst
}

// SatisfiesWithSnapshot is SatisfiesWithIndex on the columnar path.
func SatisfiesWithSnapshot(snap *relation.Snapshot, c *CFD, cx *relation.CodeIndex) bool {
	return len(detectSnap(snap, c, lhsCodeIndex(snap, c, cx), modeFirstOnly)) == 0
}

// DetectWithSnapshot is DetectWithIndex on the columnar path: all
// violations of the CFD in the snapshotted instance, sorted by
// (Row, T1, T2, Attr), pair violations against the group representative.
func DetectWithSnapshot(snap *relation.Snapshot, c *CFD, cx *relation.CodeIndex) []Violation {
	return detectSnap(snap, c, lhsCodeIndex(snap, c, cx), modeRepresentative)
}

// DetectExhaustiveWithSnapshot is DetectExhaustiveWithIndex on the
// columnar path: every pair of group members disagreeing on an RHS
// attribute, pairs oriented T1 < T2.
func DetectExhaustiveWithSnapshot(snap *relation.Snapshot, c *CFD, cx *relation.CodeIndex) []Violation {
	return detectSnap(snap, c, lhsCodeIndex(snap, c, cx), modeExhaustive)
}

// lhsCodeIndex validates that cx is an index over snap on c's LHS
// positions, rebuilding it when it is not (or is nil).
func lhsCodeIndex(snap *relation.Snapshot, c *CFD, cx *relation.CodeIndex) *relation.CodeIndex {
	if cx == nil || cx.Snapshot() != snap || !slices.Equal(cx.Positions(), c.lhs) {
		return relation.BuildCodeIndex(snap, c.lhs)
	}
	return cx
}

// detectSnap implements violation detection over a snapshot and a
// prebuilt LHS code index; it is the columnar port of detect.
func detectSnap(snap *relation.Snapshot, c *CFD, cx *relation.CodeIndex, mode detectMode) []Violation {
	var out []Violation
	n := snap.Len()
	// Hoist the LHS code columns once per CFD: pattern matching below is
	// then a pure array walk with integer compares.
	lhsCols := make([][]uint32, len(c.lhs))
	for j, p := range c.lhs {
		lhsCols[j] = snap.Col(p)
	}

	for rowIdx, row := range c.tableau {
		lhs, lhsOK := compileCells(snap, c.lhs, row.LHS)
		if !lhsOK {
			// Some LHS constant never occurs in its column: t[X] ≍ tp[X]
			// holds for no tuple, so this pattern row yields nothing.
			continue
		}
		matchLHS := func(r int) bool {
			for j := range lhs {
				if !lhs[j].wild && lhsCols[j][r] != lhs[j].code {
					return false
				}
			}
			return true
		}
		// Single-tuple violations: constant RHS cells must bind.
		hasRHSConst := false
		for _, cell := range row.RHS {
			if !cell.IsWildcard() {
				hasRHSConst = true
				break
			}
		}
		if hasRHSConst {
			for r := 0; r < n; r++ {
				if !matchLHS(r) {
					continue
				}
				t := snap.TupleAt(r)
				for j, p := range c.rhs {
					if !row.RHS[j].Matches(t[p]) {
						id := snap.TID(r)
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: SingleTuple, T1: id, T2: id, Attr: p})
						if mode == modeFirstOnly {
							return out
						}
					}
				}
			}
		}
		// Pair violations: within each LHS-equal group matching the
		// pattern, all tuples must agree on every RHS attribute.
		cx.GroupsWhile(2, func(rows []int32) bool {
			rep := int(rows[0])
			if !matchLHS(rep) {
				return true // the whole group shares the LHS, so one check suffices
			}
			if mode == modeExhaustive {
				for i, r1 := range rows {
					t1 := snap.TupleAt(int(r1))
					for _, r2 := range rows[i+1:] {
						t2 := snap.TupleAt(int(r2))
						for _, p := range c.rhs {
							if !t1[p].Equal(t2[p]) {
								out = append(out, Violation{CFD: c, Row: rowIdx, Kind: TuplePair,
									T1: snap.TID(int(r1)), T2: snap.TID(int(r2)), Attr: p})
							}
						}
					}
				}
				return true
			}
			trep := snap.TupleAt(rep)
			repID := snap.TID(rep)
			for _, r := range rows[1:] {
				t := snap.TupleAt(int(r))
				for _, p := range c.rhs {
					if !t[p].Equal(trep[p]) {
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: TuplePair,
							T1: repID, T2: snap.TID(int(r)), Attr: p})
						if mode == modeFirstOnly {
							return false
						}
					}
				}
			}
			return true
		})
		if mode == modeFirstOnly && len(out) > 0 {
			return out
		}
	}
	sortDetectOrder(out)
	return out
}

// DetectTouchedWithSnapshot is DetectTouchedWithIndex on the columnar
// path: violations whose witnesses involve at least one touched tuple.
// Touched TIDs missing from the snapshot (deleted, or inserted after the
// snapshot was built) are skipped, like TIDs missing from the instance
// on the legacy path.
func DetectTouchedWithSnapshot(snap *relation.Snapshot, c *CFD, cx *relation.CodeIndex, touched []relation.TID) []Violation {
	cx = lhsCodeIndex(snap, c, cx)
	var out []Violation
	lhsCols := make([][]uint32, len(c.lhs))
	for j, p := range c.lhs {
		lhsCols[j] = snap.Col(p)
	}

	for rowIdx, row := range c.tableau {
		lhs, lhsOK := compileCells(snap, c.lhs, row.LHS)
		if !lhsOK {
			continue
		}
		matchLHS := func(r int) bool {
			for j := range lhs {
				if !lhs[j].wild && lhsCols[j][r] != lhs[j].code {
					return false
				}
			}
			return true
		}
		// Single-tuple checks on the touched tuples only.
		hasRHSConst := false
		for _, cell := range row.RHS {
			if !cell.IsWildcard() {
				hasRHSConst = true
				break
			}
		}
		if hasRHSConst {
			for _, id := range touched {
				r, ok := snap.Row(id)
				if !ok || !matchLHS(r) {
					continue
				}
				t := snap.TupleAt(r)
				for j, p := range c.rhs {
					if !row.RHS[j].Matches(t[p]) {
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: SingleTuple, T1: id, T2: id, Attr: p})
					}
				}
			}
		}
		// Pair checks on the groups of the touched tuples, each group once.
		var seen map[int32]bool
		for _, id := range touched {
			r, ok := snap.Row(id)
			if !ok {
				continue
			}
			gi := cx.GroupOrdinal(r)
			if seen[gi] {
				continue
			}
			if seen == nil {
				seen = make(map[int32]bool, len(touched))
			}
			seen[gi] = true
			rows := cx.GroupOf(r)
			if len(rows) < 2 {
				continue
			}
			rep := int(rows[0])
			if !matchLHS(rep) {
				continue
			}
			trep := snap.TupleAt(rep)
			repID := snap.TID(rep)
			for _, gr := range rows[1:] {
				t := snap.TupleAt(int(gr))
				for _, p := range c.rhs {
					if !t[p].Equal(trep[p]) {
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: TuplePair,
							T1: repID, T2: snap.TID(int(gr)), Attr: p})
					}
				}
			}
		}
	}
	sortDetectOrder(out)
	return out
}
