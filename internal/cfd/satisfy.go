package cfd

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// ViolationKind distinguishes the two ways a tuple (pair) can violate a
// CFD, mirroring the two detection queries of Fan et al.: a single tuple
// matching the LHS pattern but clashing with an RHS constant, or a pair of
// tuples agreeing on (and matching) the LHS but disagreeing on the RHS.
type ViolationKind uint8

// The violation kinds.
const (
	// SingleTuple: t[X] ≍ tp[X] but t[Y] ̸≍ tp[Y] (constant clash).
	SingleTuple ViolationKind = iota
	// TuplePair: t1[X] = t2[X] ≍ tp[X] but t1[Y] ≠ t2[Y].
	TuplePair
)

// String names the kind.
func (k ViolationKind) String() string {
	if k == SingleTuple {
		return "single-tuple"
	}
	return "tuple-pair"
}

// Violation records one detected CFD violation.
type Violation struct {
	CFD  *CFD
	Row  int // index into the tableau
	Kind ViolationKind
	T1   relation.TID // offending tuple
	T2   relation.TID // second tuple for TuplePair (== T1 otherwise)
	Attr int          // schema position of the clashing RHS attribute
}

// String renders the violation for reports.
func (v Violation) String() string {
	attr := v.CFD.Schema().Attr(v.Attr).Name
	if v.Kind == SingleTuple {
		return fmt.Sprintf("%s: tuple %d violates row %d on %s", v.CFD.Schema().Name(), v.T1, v.Row, attr)
	}
	return fmt.Sprintf("%s: tuples %d,%d violate row %d on %s", v.CFD.Schema().Name(), v.T1, v.T2, v.Row, attr)
}

// Satisfies reports whether the instance satisfies the CFD (D ⊨ ϕ).
func Satisfies(in *relation.Instance, c *CFD) bool {
	return len(detect(in, c, true)) == 0
}

// SatisfiesAll reports whether the instance satisfies every CFD in the set
// (D ⊨ Σ).
func SatisfiesAll(in *relation.Instance, set []*CFD) bool {
	for _, c := range set {
		if !Satisfies(in, c) {
			return false
		}
	}
	return true
}

// Detect returns all violations of the CFD in the instance. Pair
// violations are reported once per offending tuple against a
// representative of its LHS group (linear in the group size rather than
// quadratic), which is sufficient to locate every dirty tuple.
func Detect(in *relation.Instance, c *CFD) []Violation {
	return detect(in, c, false)
}

// DetectAll runs Detect for every CFD in the set and returns the combined
// violations in deterministic order.
func DetectAll(in *relation.Instance, set []*CFD) []Violation {
	var out []Violation
	for _, c := range set {
		out = append(out, Detect(in, c)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T1 != out[j].T1 {
			return out[i].T1 < out[j].T1
		}
		if out[i].T2 != out[j].T2 {
			return out[i].T2 < out[j].T2
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// detect implements violation detection; with firstOnly it stops at the
// first violation (satisfaction checking).
func detect(in *relation.Instance, c *CFD, firstOnly bool) []Violation {
	var out []Violation
	ids := in.IDs()
	// Index the instance once per CFD on the LHS positions; every pattern
	// row reuses the grouping.
	ix := relation.BuildIndex(in, c.lhs)

	for rowIdx, row := range c.tableau {
		// Single-tuple violations: constant RHS cells must bind.
		hasRHSConst := false
		for _, cell := range row.RHS {
			if !cell.IsWildcard() {
				hasRHSConst = true
				break
			}
		}
		matchLHS := func(t relation.Tuple) bool {
			for j, p := range c.lhs {
				if !row.LHS[j].Matches(t[p]) {
					return false
				}
			}
			return true
		}
		if hasRHSConst {
			for _, id := range ids {
				t, _ := in.Tuple(id)
				if !matchLHS(t) {
					continue
				}
				for j, p := range c.rhs {
					if !row.RHS[j].Matches(t[p]) {
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: SingleTuple, T1: id, T2: id, Attr: p})
						if firstOnly {
							return out
						}
					}
				}
			}
		}
		// Pair violations: within each LHS-equal group of tuples matching
		// the pattern, all tuples must agree on every RHS attribute.
		var groupViol []Violation
		stop := false
		ix.Groups(2, func(_ string, gids []relation.TID) {
			if stop {
				return
			}
			rep, _ := in.Tuple(gids[0])
			if !matchLHS(rep) {
				return // the whole group shares the LHS, so one check suffices
			}
			for _, id := range gids[1:] {
				t, _ := in.Tuple(id)
				for j, p := range c.rhs {
					_ = j
					if !t[p].Equal(rep[p]) {
						groupViol = append(groupViol, Violation{CFD: c, Row: rowIdx, Kind: TuplePair, T1: gids[0], T2: id, Attr: p})
						if firstOnly {
							stop = true
							return
						}
					}
				}
			}
		})
		out = append(out, groupViol...)
		if firstOnly && len(out) > 0 {
			return out
		}
	}
	return out
}

// ViolatingTIDs returns the distinct TIDs involved in any violation, in
// ascending order; a convenience for repair algorithms.
func ViolatingTIDs(vs []Violation) []relation.TID {
	seen := make(map[relation.TID]bool)
	for _, v := range vs {
		seen[v.T1] = true
		seen[v.T2] = true
	}
	out := make([]relation.TID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
