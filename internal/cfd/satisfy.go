package cfd

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/relation"
)

// ViolationKind distinguishes the two ways a tuple (pair) can violate a
// CFD, mirroring the two detection queries of Fan et al.: a single tuple
// matching the LHS pattern but clashing with an RHS constant, or a pair of
// tuples agreeing on (and matching) the LHS but disagreeing on the RHS.
type ViolationKind uint8

// The violation kinds.
const (
	// SingleTuple: t[X] ≍ tp[X] but t[Y] ̸≍ tp[Y] (constant clash).
	SingleTuple ViolationKind = iota
	// TuplePair: t1[X] = t2[X] ≍ tp[X] but t1[Y] ≠ t2[Y].
	TuplePair
)

// String names the kind.
func (k ViolationKind) String() string {
	if k == SingleTuple {
		return "single-tuple"
	}
	return "tuple-pair"
}

// Violation records one detected CFD violation.
type Violation struct {
	CFD  *CFD
	Row  int // index into the tableau
	Kind ViolationKind
	T1   relation.TID // offending tuple
	T2   relation.TID // second tuple for TuplePair (== T1 otherwise)
	Attr int          // schema position of the clashing RHS attribute
}

// String renders the violation for reports.
func (v Violation) String() string {
	attr := v.CFD.Schema().Attr(v.Attr).Name
	if v.Kind == SingleTuple {
		return fmt.Sprintf("%s: tuple %d violates row %d on %s", v.CFD.Schema().Name(), v.T1, v.Row, attr)
	}
	return fmt.Sprintf("%s: tuples %d,%d violate row %d on %s", v.CFD.Schema().Name(), v.T1, v.T2, v.Row, attr)
}

// Satisfies reports whether the instance satisfies the CFD (D ⊨ ϕ).
func Satisfies(in *relation.Instance, c *CFD) bool {
	return SatisfiesWithIndex(in, c, relation.BuildIndex(in, c.lhs))
}

// SatisfiesWithIndex is Satisfies over a caller-supplied LHS index,
// letting batch engines build the index once and share it across every
// CFD (and tableau row) with the same LHS position set.
func SatisfiesWithIndex(in *relation.Instance, c *CFD, ix *relation.Index) bool {
	return len(detect(in, c, lhsIndex(in, c, ix), modeFirstOnly)) == 0
}

// SatisfiesAll reports whether the instance satisfies every CFD in the set
// (D ⊨ Σ).
func SatisfiesAll(in *relation.Instance, set []*CFD) bool {
	for _, c := range set {
		if !Satisfies(in, c) {
			return false
		}
	}
	return true
}

// Detect returns all violations of the CFD in the instance, sorted by
// (Row, T1, T2, Attr). Pair violations are reported once per offending
// tuple against a representative of its LHS group (linear in the group
// size rather than quadratic), which is sufficient to locate every dirty
// tuple.
func Detect(in *relation.Instance, c *CFD) []Violation {
	return DetectWithIndex(in, c, relation.BuildIndex(in, c.lhs))
}

// DetectWithIndex is Detect over a caller-supplied index on the CFD's LHS
// positions; if the index was built on different positions it is rebuilt.
// The engine in internal/detect uses this entry point to share one index
// across all CFDs grouped on the same LHS position set.
func DetectWithIndex(in *relation.Instance, c *CFD, ix *relation.Index) []Violation {
	return detect(in, c, lhsIndex(in, c, ix), modeRepresentative)
}

// lhsIndex validates that ix is an index on c's LHS positions, rebuilding
// it when it is not (or is nil).
func lhsIndex(in *relation.Instance, c *CFD, ix *relation.Index) *relation.Index {
	if ix == nil || !slices.Equal(ix.Positions(), c.lhs) {
		return relation.BuildIndex(in, c.lhs)
	}
	return ix
}

// DetectAll runs Detect for every CFD in the set and returns the combined
// violations in deterministic order (see SortViolations).
func DetectAll(in *relation.Instance, set []*CFD) []Violation {
	var out []Violation
	for _, c := range set {
		out = append(out, Detect(in, c)...)
	}
	SortViolations(out)
	return out
}

// SortViolations sorts a combined violation slice into the canonical
// reporting order: (T1, T2, Attr, Row), stably, so violations of distinct
// CFDs that tie on all four keys keep the Σ order they were gathered in.
// Both DetectAll and the parallel engine in internal/detect merge through
// this comparator, which is what makes their outputs identical.
func SortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].T1 != vs[j].T1 {
			return vs[i].T1 < vs[j].T1
		}
		if vs[i].T2 != vs[j].T2 {
			return vs[i].T2 < vs[j].T2
		}
		if vs[i].Attr != vs[j].Attr {
			return vs[i].Attr < vs[j].Attr
		}
		return vs[i].Row < vs[j].Row
	})
}

// DetectExhaustiveWithIndex is DetectWithIndex with exhaustive pair
// reporting: where Detect reports each offending tuple once against its
// group representative (linear in the group size, sufficient to locate
// every dirty tuple), this variant emits a violation for every pair of
// group members disagreeing on an RHS attribute (quadratic in the group
// size). Conflict hypergraphs need the exhaustive form — with only
// representative pairs, deleting the representative would disconnect
// tuples that still conflict with each other. Output is sorted like
// Detect, with pairs oriented T1 < T2.
func DetectExhaustiveWithIndex(in *relation.Instance, c *CFD, ix *relation.Index) []Violation {
	return detect(in, c, lhsIndex(in, c, ix), modeExhaustive)
}

// detectMode selects how detect reports pair violations.
type detectMode uint8

const (
	// modeRepresentative reports each offending tuple once against its
	// group representative — linear in the group size, enough to locate
	// every dirty tuple.
	modeRepresentative detectMode = iota
	// modeFirstOnly stops at the first violation (satisfaction checking).
	modeFirstOnly
	// modeExhaustive reports every pair of group members disagreeing on
	// an RHS attribute (pairs oriented T1 < T2) — quadratic in the group
	// size, required for complete conflict hypergraphs, where
	// representative-only pairs would disconnect tuples that still
	// conflict with each other.
	modeExhaustive
)

// detect implements violation detection over a prebuilt LHS index.
func detect(in *relation.Instance, c *CFD, ix *relation.Index, mode detectMode) []Violation {
	var out []Violation
	ids := in.IDs()

	for rowIdx, row := range c.tableau {
		// Single-tuple violations: constant RHS cells must bind.
		hasRHSConst := false
		for _, cell := range row.RHS {
			if !cell.IsWildcard() {
				hasRHSConst = true
				break
			}
		}
		matchLHS := func(t relation.Tuple) bool {
			for j, p := range c.lhs {
				if !row.LHS[j].Matches(t[p]) {
					return false
				}
			}
			return true
		}
		if hasRHSConst {
			for _, id := range ids {
				t, _ := in.Tuple(id)
				if !matchLHS(t) {
					continue
				}
				for j, p := range c.rhs {
					if !row.RHS[j].Matches(t[p]) {
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: SingleTuple, T1: id, T2: id, Attr: p})
						if mode == modeFirstOnly {
							return out
						}
					}
				}
			}
		}
		// Pair violations: within each LHS-equal group of tuples matching
		// the pattern, all tuples must agree on every RHS attribute.
		ix.GroupsWhile(2, func(_ string, gids []relation.TID) bool {
			rep, _ := in.Tuple(gids[0])
			if !matchLHS(rep) {
				return true // the whole group shares the LHS, so one check suffices
			}
			if mode == modeExhaustive {
				for i, id1 := range gids {
					t1, _ := in.Tuple(id1)
					for _, id2 := range gids[i+1:] {
						t2, _ := in.Tuple(id2)
						for _, p := range c.rhs {
							if !t1[p].Equal(t2[p]) {
								out = append(out, Violation{CFD: c, Row: rowIdx, Kind: TuplePair, T1: id1, T2: id2, Attr: p})
							}
						}
					}
				}
				return true
			}
			for _, id := range gids[1:] {
				t, _ := in.Tuple(id)
				for _, p := range c.rhs {
					if !t[p].Equal(rep[p]) {
						out = append(out, Violation{CFD: c, Row: rowIdx, Kind: TuplePair, T1: gids[0], T2: id, Attr: p})
						if mode == modeFirstOnly {
							return false
						}
					}
				}
			}
			return true
		})
		if mode == modeFirstOnly && len(out) > 0 {
			return out
		}
	}
	sortDetectOrder(out)
	return out
}

// sortDetectOrder sorts one CFD's violations into the canonical per-CFD
// order (Row, T1, T2, Attr); Index.Groups iterates buckets in map order,
// so Detect would otherwise be nondeterministic on its own, not only
// before DetectAll's global merge.
func sortDetectOrder(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Row != vs[j].Row {
			return vs[i].Row < vs[j].Row
		}
		if vs[i].T1 != vs[j].T1 {
			return vs[i].T1 < vs[j].T1
		}
		if vs[i].T2 != vs[j].T2 {
			return vs[i].T2 < vs[j].T2
		}
		return vs[i].Attr < vs[j].Attr
	})
}

// ViolatingTIDs returns the distinct TIDs involved in any violation, in
// ascending order; a convenience for repair algorithms.
func ViolatingTIDs(vs []Violation) []relation.TID {
	seen := make(map[relation.TID]bool)
	for _, v := range vs {
		seen[v.T1] = true
		seen[v.T2] = true
	}
	out := make([]relation.TID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
