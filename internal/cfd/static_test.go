package cfd_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfd"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// TestExample41Inconsistent reproduces Example 4.1: the CFD pair over a
// bool attribute has no nonempty satisfying instance.
func TestExample41Inconsistent(t *testing.T) {
	_, set := paperdata.Example41()
	ok, _ := cfd.Consistent(set)
	if ok {
		t.Error("Example 4.1 set must be inconsistent")
	}
	ok, _ = cfd.ConsistentExact(set)
	if ok {
		t.Error("exact procedure disagrees")
	}
	// Each CFD alone is consistent.
	for i, c := range set {
		if ok, _ := cfd.Consistent([]*cfd.CFD{c}); !ok {
			t.Errorf("ψ%d alone should be consistent", i+1)
		}
	}
}

// TestExample41NeedsFiniteDomain shows the role of dom(A): with an
// infinite string domain in place of bool, the same pattern structure is
// consistent (pick A outside {the constants}).
func TestExample41NeedsFiniteDomain(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	psi1 := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a1"))}, []cfd.Cell{cfd.Const(relation.Str("b1"))}),
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a2"))}, []cfd.Cell{cfd.Const(relation.Str("b2"))}),
	)
	psi2 := cfd.MustNew(s, []string{"B"}, []string{"A"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("b1"))}, []cfd.Cell{cfd.Const(relation.Str("a2"))}),
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("b2"))}, []cfd.Cell{cfd.Const(relation.Str("a1"))}),
	)
	set := []*cfd.CFD{psi1, psi2}
	if cfd.HasFiniteDomainAttrs(set) {
		t.Fatal("no finite domains expected")
	}
	ok, witness := cfd.Consistent(set)
	if !ok {
		t.Fatal("infinite-domain variant should be consistent")
	}
	wi := relation.NewInstance(s)
	if _, err := wi.Insert(witness); err != nil {
		t.Fatalf("witness insert: %v", err)
	}
	if !cfd.SatisfiesAll(wi, set) {
		t.Errorf("witness %v does not satisfy the set", witness)
	}
}

// TestConsistencyForcedConflict exercises the fixpoint conflict path
// without finite domains: two unconditional constant rows that disagree.
func TestConsistencyForcedConflict(t *testing.T) {
	s := relation.MustSchema("r", relation.Attr("A", relation.KindString), relation.Attr("B", relation.KindString))
	c1 := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(relation.Str("x"))}))
	c2 := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(relation.Str("y"))}))
	if ok, _ := cfd.Consistent([]*cfd.CFD{c1, c2}); ok {
		t.Error("wildcard-LHS rows forcing B=x and B=y must be inconsistent")
	}
	if ok, _ := cfd.ConsistentExact([]*cfd.CFD{c1, c2}); ok {
		t.Error("exact procedure disagrees")
	}
	// Transitive forcing: A=_ → B=x, B=x → C=z, C=z′ forced elsewhere.
	s3 := relation.MustSchema("r",
		relation.Attr("A", relation.KindString), relation.Attr("B", relation.KindString), relation.Attr("C", relation.KindString))
	d1 := cfd.MustNew(s3, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(relation.Str("x"))}))
	d2 := cfd.MustNew(s3, []string{"B"}, []string{"C"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("x"))}, []cfd.Cell{cfd.Const(relation.Str("z"))}))
	d3 := cfd.MustNew(s3, []string{"A"}, []string{"C"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(relation.Str("w"))}))
	if ok, _ := cfd.Consistent([]*cfd.CFD{d1, d2, d3}); ok {
		t.Error("transitive forced conflict missed")
	}
	if ok, _ := cfd.Consistent([]*cfd.CFD{d1, d2}); !ok {
		t.Error("without d3 the set is consistent")
	}
}

func TestConsistentWitnessSatisfies(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	set := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s)}
	ok, witness := cfd.Consistent(set)
	if !ok {
		t.Fatal("Figure 2 CFDs are consistent")
	}
	wi := relation.NewInstance(s)
	if _, err := wi.Insert(witness); err != nil {
		t.Fatal(err)
	}
	if !cfd.SatisfiesAll(wi, set) {
		t.Errorf("witness %v violates the set", witness)
	}
}

func TestEmptySetConsistent(t *testing.T) {
	if ok, _ := cfd.Consistent(nil); !ok {
		t.Error("empty set must be consistent")
	}
}

// TestImplicationBasics checks textbook consequences in the CFD setting.
func TestImplicationBasics(t *testing.T) {
	s := paperdata.CustomerSchema()
	f1 := paperdata.F1(s) // [CC,AC,phn] → [street,city,zip]
	f2 := paperdata.F2(s) // [CC,AC] → [city]

	// f2 implies the weaker [CC,AC,phn] → [city] (augmentation).
	aug := cfd.MustFD(s, []string{"CC", "AC", "phn"}, []string{"city"})
	if !cfd.Implies([]*cfd.CFD{f2}, aug) {
		t.Error("f2 ⊨ [CC,AC,phn] → [city]")
	}
	// And not vice versa.
	if cfd.Implies([]*cfd.CFD{aug}, f2) {
		t.Error("[CC,AC,phn] → [city] ⊭ f2")
	}
	// f1 does not imply f2.
	if cfd.Implies([]*cfd.CFD{f1}, f2) {
		t.Error("f1 ⊭ f2")
	}
	// ϕ1 (conditional) is implied by the unconditional [CC,zip]→[street].
	uncond := cfd.MustFD(s, []string{"CC", "zip"}, []string{"street"})
	if !cfd.Implies([]*cfd.CFD{uncond}, paperdata.Phi1(s)) {
		t.Error("FD ⊨ its conditional restriction")
	}
	// But the conditional ϕ1 does not imply the unconditional FD.
	if cfd.Implies([]*cfd.CFD{paperdata.Phi1(s)}, uncond) {
		t.Error("ϕ1 ⊭ unconditional [CC,zip]→[street]")
	}
}

// TestImplicationPatternUpgrade: a constant RHS follows from a chain of
// constant rows (transitivity through constants).
func TestImplicationPatternUpgrade(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
		relation.Attr("C", relation.KindString),
	)
	ab := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a"))}, []cfd.Cell{cfd.Const(relation.Str("b"))}))
	bc := cfd.MustNew(s, []string{"B"}, []string{"C"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("b"))}, []cfd.Cell{cfd.Const(relation.Str("c"))}))
	ac := cfd.MustNew(s, []string{"A"}, []string{"C"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a"))}, []cfd.Cell{cfd.Const(relation.Str("c"))}))
	if !cfd.Implies([]*cfd.CFD{ab, bc}, ac) {
		t.Error("{A=a→B=b, B=b→C=c} ⊨ A=a→C=c")
	}
	if cfd.Implies([]*cfd.CFD{ab}, ac) {
		t.Error("A=a→B=b alone ⊭ A=a→C=c")
	}
	// Wildcard transitivity: A→B, B→C ⊨ A→C.
	fab := cfd.MustFD(s, []string{"A"}, []string{"B"})
	fbc := cfd.MustFD(s, []string{"B"}, []string{"C"})
	fac := cfd.MustFD(s, []string{"A"}, []string{"C"})
	if !cfd.Implies([]*cfd.CFD{fab, fbc}, fac) {
		t.Error("FD transitivity lost in CFD implication")
	}
}

// TestImplicationFiniteDomain: with a two-valued domain, case analysis
// over the domain yields consequences that fail over infinite domains —
// the reason implication is coNP-complete in general (Theorem 4.1 vs 4.3).
func TestImplicationFiniteDomain(t *testing.T) {
	mk := func(kindBool bool) (*relation.Schema, []*cfd.CFD, *cfd.CFD) {
		var a relation.Attribute
		if kindBool {
			a = relation.FiniteAttr("A", relation.BoolDom())
		} else {
			a = relation.Attr("A", relation.KindString)
		}
		s := relation.MustSchema("r", a, relation.Attr("B", relation.KindString))
		var c1, c2 *cfd.CFD
		if kindBool {
			c1 = cfd.MustNew(s, []string{"A"}, []string{"B"},
				cfd.Row([]cfd.Cell{cfd.Const(relation.Bool(true))}, []cfd.Cell{cfd.Const(relation.Str("z"))}))
			c2 = cfd.MustNew(s, []string{"A"}, []string{"B"},
				cfd.Row([]cfd.Cell{cfd.Const(relation.Bool(false))}, []cfd.Cell{cfd.Const(relation.Str("z"))}))
		} else {
			c1 = cfd.MustNew(s, []string{"A"}, []string{"B"},
				cfd.Row([]cfd.Cell{cfd.Const(relation.Str("true"))}, []cfd.Cell{cfd.Const(relation.Str("z"))}))
			c2 = cfd.MustNew(s, []string{"A"}, []string{"B"},
				cfd.Row([]cfd.Cell{cfd.Const(relation.Str("false"))}, []cfd.Cell{cfd.Const(relation.Str("z"))}))
		}
		target := cfd.MustNew(s, []string{"A"}, []string{"B"},
			cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Const(relation.Str("z"))}))
		return s, []*cfd.CFD{c1, c2}, target
	}
	// Over bool: A is true or false, so B=z always. Implied.
	_, set, target := mk(true)
	if !cfd.Implies(set, target) {
		t.Error("bool case analysis: {A=t→B=z, A=f→B=z} ⊨ A=_→B=z")
	}
	// Over strings: A may be neither "true" nor "false". Not implied.
	_, set, target = mk(false)
	if cfd.Implies(set, target) {
		t.Error("string domain: case analysis must fail")
	}
}

// TestImplicationFastMatchesExact cross-checks the quadratic chase of
// Theorem 4.3 against the exhaustive search on random constant-free-domain
// (infinite-domain) inputs.
func TestImplicationFastMatchesExact(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
		relation.Attr("C", relation.KindString),
	)
	attrs := []string{"A", "B", "C"}
	consts := []relation.Value{relation.Str("u"), relation.Str("v")}
	rng := rand.New(rand.NewSource(7))
	randCell := func() cfd.Cell {
		if rng.Intn(2) == 0 {
			return cfd.Any()
		}
		return cfd.Const(consts[rng.Intn(len(consts))])
	}
	randCFD := func() *cfd.CFD {
		li := rng.Intn(3)
		var lhs []string
		for j, a := range attrs {
			if j == li || rng.Intn(2) == 0 {
				lhs = append(lhs, a)
			}
		}
		rhs := attrs[rng.Intn(3)]
		cells := make([]cfd.Cell, len(lhs))
		for j := range cells {
			cells[j] = randCell()
		}
		return cfd.MustNew(s, lhs, []string{rhs}, cfd.Row(cells, []cfd.Cell{randCell()}))
	}
	agree, disagreeAt := 0, -1
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3)
		var set []*cfd.CFD
		for i := 0; i < n; i++ {
			set = append(set, randCFD())
		}
		phi := randCFD()
		fast := cfd.Implies(set, phi) // dispatches to chase (no finite domains)
		exact := cfd.ImpliesExact(set, phi)
		if fast == exact {
			agree++
		} else if disagreeAt < 0 {
			disagreeAt = trial
			t.Errorf("trial %d: fast=%v exact=%v\nΣ=%v\nϕ=%v", trial, fast, exact, set, phi)
		}
	}
	if agree != 200 {
		t.Errorf("agreement %d/200", agree)
	}
}

// TestConsistencyFastMatchesExact cross-checks the fixpoint against the
// search on random infinite-domain inputs.
func TestConsistencyFastMatchesExact(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	consts := []relation.Value{relation.Str("x"), relation.Str("y")}
	rng := rand.New(rand.NewSource(11))
	randCell := func() cfd.Cell {
		if rng.Intn(3) == 0 {
			return cfd.Any()
		}
		return cfd.Const(consts[rng.Intn(len(consts))])
	}
	for trial := 0; trial < 300; trial++ {
		var set []*cfd.CFD
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				set = append(set, cfd.MustNew(s, []string{"A"}, []string{"B"},
					cfd.Row([]cfd.Cell{randCell()}, []cfd.Cell{randCell()})))
			} else {
				set = append(set, cfd.MustNew(s, []string{"B"}, []string{"A"},
					cfd.Row([]cfd.Cell{randCell()}, []cfd.Cell{randCell()})))
			}
		}
		fastOK, _ := cfd.ConsistentFast(set)
		exactOK, _ := cfd.ConsistentExact(set)
		if fastOK != exactOK {
			t.Fatalf("trial %d: fast=%v exact=%v for %v", trial, fastOK, exactOK, set)
		}
	}
}

func TestMinimalCover(t *testing.T) {
	s := paperdata.CustomerSchema()
	f2 := paperdata.F2(s)
	aug := cfd.MustFD(s, []string{"CC", "AC", "phn"}, []string{"city"}) // implied by f2
	cover := cfd.MinimalCover([]*cfd.CFD{f2, aug})
	if len(cover) != 1 {
		t.Fatalf("cover size = %d, want 1 (aug is redundant): %v", len(cover), cover)
	}
	// The cover still implies the removed member.
	if !cfd.Implies(cover, aug) {
		t.Error("cover lost a consequence")
	}
	// Nothing redundant: independent CFDs survive.
	set := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi3(s)}
	cover2 := cfd.MinimalCover(set)
	if len(cover2) != 2 {
		t.Errorf("independent set shrank to %d", len(cover2))
	}
}

func TestClosureSoundness(t *testing.T) {
	// Every CFD derived by the inference system must be semantically
	// implied (soundness of the axiomatization, Theorem 4.6(a)).
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
		relation.Attr("C", relation.KindString),
	)
	ab := cfd.MustNew(s, []string{"A"}, []string{"B"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Str("a"))}, []cfd.Cell{cfd.Const(relation.Str("b"))}))
	bc := cfd.MustNew(s, []string{"B"}, []string{"C"},
		cfd.Row([]cfd.Cell{cfd.Any()}, []cfd.Cell{cfd.Any()}))
	base := []*cfd.CFD{ab, bc}
	closed, derivations := cfd.Closure(base, 60)
	if len(closed) <= 2 {
		t.Fatalf("closure derived nothing: %v", closed)
	}
	for _, d := range derivations {
		if !cfd.ImpliesExact(base, d.Derived) {
			t.Errorf("UNSOUND %s", d)
		}
	}
	// Trans must fire: A=a → C via B.
	foundTrans := false
	for _, d := range derivations {
		if d.Rule == "Trans" {
			foundTrans = true
		}
	}
	if !foundTrans {
		t.Error("no Trans derivation produced")
	}
}

func TestAugmentAndReflexive(t *testing.T) {
	s := paperdata.CustomerSchema()
	phi1 := paperdata.Phi1(s).Normalize()[0]
	augmented, err := cfd.Augment(phi1, "AC")
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Implies([]*cfd.CFD{phi1}, augmented) {
		t.Error("Aug must be sound")
	}
	if _, err := cfd.Augment(phi1, "CC"); err == nil {
		t.Error("want error augmenting with existing attribute")
	}
	refl, err := cfd.Reflexive(s, []string{"CC"}, "zip", []cfd.Cell{cfd.Any()}, cfd.Any())
	if err != nil {
		t.Fatal(err)
	}
	if !cfd.Implies(nil, refl) {
		t.Error("Refl instance must be valid (implied by the empty set)")
	}
}

func TestFDClosureImplies(t *testing.T) {
	s := paperdata.CustomerSchema()
	fds := cfd.FDsOf([]*cfd.CFD{paperdata.F1(s), paperdata.F2(s)})
	if len(fds) != 2 {
		t.Fatalf("FDsOf = %d", len(fds))
	}
	key := []int{s.MustLookup("CC"), s.MustLookup("AC"), s.MustLookup("phn")}
	closure := cfd.AttrClosure(fds, key)
	for _, a := range []string{"street", "city", "zip"} {
		if !closure[s.MustLookup(a)] {
			t.Errorf("closure misses %s", a)
		}
	}
	if closure[s.MustLookup("name")] {
		t.Error("closure must not contain name")
	}
	if !cfd.FDImplies(fds, key, []int{s.MustLookup("city")}) {
		t.Error("FDImplies failed on derivable FD")
	}
	if cfd.FDImplies(fds, []int{s.MustLookup("CC")}, []int{s.MustLookup("city")}) {
		t.Error("FDImplies accepted a non-consequence")
	}
}
