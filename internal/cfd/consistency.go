package cfd

import "repro/internal/relation"

// This file implements the consistency analysis of Section 4.1: deciding
// whether a set Σ of CFDs admits a nonempty satisfying instance.
// Example 4.1 of the paper shows the problem is nontrivial once
// finite-domain attributes occur; Theorem 4.1 pins it NP-complete in
// general and Theorem 4.3 gives a quadratic algorithm when no
// finite-domain attribute is involved.
//
// Both procedures rest on the single-tuple characterization: CFD
// satisfaction is universally quantified over tuple pairs, hence closed
// under subsets, so Σ is consistent iff some single tuple t has {t} ⊨ Σ.
// For a single tuple the pair condition degenerates to pattern
// implication: for every row tp, t[X] ≍ tp[X] ⇒ t[Y] ≍ tp[Y].

// Consistent decides whether Σ is consistent, dispatching to the
// quadratic fixpoint when no effectively finite domain is involved and to
// the exact exponential search otherwise. The second return value is a
// witness tuple over the schema when consistent (nil otherwise).
func Consistent(set []*CFD) (bool, relation.Tuple) {
	if len(set) == 0 {
		return true, nil
	}
	if !HasFiniteDomainAttrs(set) {
		return consistentFast(set)
	}
	return ConsistentExact(set)
}

// ConsistentFast runs the quadratic no-finite-domain algorithm of
// Theorem 4.3. It must only be called when HasFiniteDomainAttrs(set) is
// false; Consistent performs that dispatch.
//
// The algorithm computes the least fixpoint of "forced" attribute
// bindings: rows whose LHS constant cells are all already forced fire and
// force their RHS constants. The freest tuple — forced positions take
// their constants, all others take values fresh from every mentioned
// constant — satisfies Σ iff the fixpoint is conflict-free, because
// un-forced fresh values falsify every remaining constant premise and
// infinite domains always supply such values.
func ConsistentFast(set []*CFD) (bool, relation.Tuple) {
	return consistentFast(set)
}

func consistentFast(set []*CFD) (bool, relation.Tuple) {
	rows, schema, err := normalizeRows(set)
	if err != nil {
		return false, nil
	}
	if len(rows) == 0 {
		return true, nil
	}
	forced := make(map[int]relation.Value)
	for changed := true; changed; {
		changed = false
		for _, r := range rows {
			fires := true
			for j, cell := range r.lhs {
				if cell.IsWildcard() {
					continue
				}
				v, ok := forced[r.lhsPos[j]]
				if !ok || !v.Equal(cell.Value()) {
					fires = false
					break
				}
			}
			if !fires || r.rhs.IsWildcard() {
				continue
			}
			if v, ok := forced[r.rhsPos]; ok {
				if !v.Equal(r.rhs.Value()) {
					return false, nil // conflicting forced constants
				}
				continue
			}
			forced[r.rhsPos] = r.rhs.Value()
			changed = true
		}
	}
	// Build the witness: forced constants, fresh values elsewhere.
	consts := constantsAt(rows)
	t := make(relation.Tuple, schema.Arity())
	for p := 0; p < schema.Arity(); p++ {
		if v, ok := forced[p]; ok {
			t[p] = v
			continue
		}
		a := schema.Attr(p)
		switch {
		case attrEffectivelyFinite(a):
			// Unreachable under the documented precondition for involved
			// attributes; uninvolved finite attributes just take any
			// domain value.
			t[p] = domainValuesOf(a)[0]
		default:
			t[p] = freshValues(a, consts[p], 1)[0]
		}
	}
	// The fixpoint argument guarantees {t} ⊨ Σ; verify defensively.
	if !singleTupleSatisfies(rows, t) {
		return false, nil
	}
	return true, t
}

// ConsistentExact decides consistency by exhaustive search over the
// single-tuple characterization: each involved attribute ranges over its
// finite domain, or over the mentioned constants plus one fresh value when
// infinite. This matches the NP upper bound of Theorem 4.1 and is exact
// for every input.
func ConsistentExact(set []*CFD) (bool, relation.Tuple) {
	rows, schema, err := normalizeRows(set)
	if err != nil {
		return false, nil
	}
	if len(rows) == 0 {
		return true, nil
	}
	pos := involvedPositions(rows)
	consts := constantsAt(rows)
	cands := make([][]relation.Value, len(pos))
	for i, p := range pos {
		cands[i] = candidateValues(schema.Attr(p), consts[p], 1)
	}
	assign := make(map[int]relation.Value, len(pos))
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == len(pos) {
			return true
		}
		p := pos[i]
		for _, v := range cands[i] {
			assign[p] = v
			if partialOK(rows, assign) && dfs(i+1) {
				return true
			}
		}
		delete(assign, p)
		return false
	}
	if !dfs(0) {
		return false, nil
	}
	// Complete the witness over uninvolved attributes.
	t := make(relation.Tuple, schema.Arity())
	for p := 0; p < schema.Arity(); p++ {
		if v, ok := assign[p]; ok {
			t[p] = v
			continue
		}
		a := schema.Attr(p)
		if attrEffectivelyFinite(a) {
			t[p] = domainValuesOf(a)[0]
		} else {
			t[p] = freshValues(a, nil, 1)[0]
		}
	}
	return true, t
}

// partialOK checks that no row is already violated under a partial
// assignment: a row fails only when all its LHS constant cells are
// assigned and matching, and its RHS cell is a constant whose position is
// assigned to a different value.
func partialOK(rows []normalRow, assign map[int]relation.Value) bool {
	for _, r := range rows {
		lhsMatched := true
		for j, cell := range r.lhs {
			if cell.IsWildcard() {
				continue
			}
			v, ok := assign[r.lhsPos[j]]
			if !ok {
				lhsMatched = false // undecided: cannot prune on this row
				break
			}
			if !v.Equal(cell.Value()) {
				lhsMatched = false
				break
			}
		}
		if !lhsMatched || r.rhs.IsWildcard() {
			continue
		}
		if v, ok := assign[r.rhsPos]; ok && !v.Equal(r.rhs.Value()) {
			return false
		}
	}
	return true
}

// singleTupleSatisfies checks {t} ⊨ Σ via the single-tuple semantics.
func singleTupleSatisfies(rows []normalRow, t relation.Tuple) bool {
	for _, r := range rows {
		match := true
		for j, cell := range r.lhs {
			if !cell.Matches(t[r.lhsPos[j]]) {
				match = false
				break
			}
		}
		if match && !r.rhs.Matches(t[r.rhsPos]) {
			return false
		}
	}
	return true
}
