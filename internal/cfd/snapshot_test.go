package cfd

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

// fig1 rebuilds the Figure 1 instance locally (paperdata imports cfd, so
// tests here cannot use it without a cycle).
func fig1() *relation.Instance {
	s := relation.MustSchema("customer",
		relation.Attr("CC", relation.KindInt),
		relation.Attr("AC", relation.KindInt),
		relation.Attr("phn", relation.KindInt),
		relation.Attr("name", relation.KindString),
		relation.Attr("street", relation.KindString),
		relation.Attr("city", relation.KindString),
		relation.Attr("zip", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Int(44), relation.Int(131), relation.Int(1234567),
		relation.Str("Mike"), relation.Str("Mayfield"), relation.Str("NYC"), relation.Str("EH4 8LE"))
	in.MustInsert(relation.Int(44), relation.Int(131), relation.Int(3456789),
		relation.Str("Rick"), relation.Str("Crichton"), relation.Str("NYC"), relation.Str("EH4 8LE"))
	in.MustInsert(relation.Int(1), relation.Int(908), relation.Int(3456789),
		relation.Str("Joe"), relation.Str("Mtn Ave"), relation.Str("NYC"), relation.Str("07974"))
	return in
}

// snapDetect runs the snapshot path end to end for one CFD.
func snapDetect(in *relation.Instance, c *CFD) []Violation {
	snap := relation.NewSnapshot(in)
	return DetectWithSnapshot(snap, c, relation.BuildCodeIndex(snap, c.LHS()))
}

func TestSnapshotDetectMatchesLegacyOnFigure1(t *testing.T) {
	in := fig1()
	s := in.Schema()
	cases := []*CFD{
		MustFD(s, []string{"CC", "AC", "phn"}, []string{"street", "city", "zip"}),
		MustFD(s, []string{"CC", "AC"}, []string{"city"}),
		MustNew(s, []string{"CC", "zip"}, []string{"street"},
			Row([]Cell{Const(relation.Int(44)), Any()}, []Cell{Any()})),
		MustNew(s, []string{"CC", "AC", "phn"}, []string{"street", "city", "zip"},
			Row([]Cell{Any(), Any(), Any()}, []Cell{Any(), Any(), Any()}),
			Row([]Cell{Const(relation.Int(44)), Const(relation.Int(131)), Any()},
				[]Cell{Any(), Const(relation.Str("EDI")), Any()}),
			Row([]Cell{Const(relation.Int(1)), Const(relation.Int(908)), Any()},
				[]Cell{Any(), Const(relation.Str("MH")), Any()})),
	}
	for i, c := range cases {
		want := Detect(in, c)
		got := snapDetect(in, c)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: snapshot path diverges:\n got %v\nwant %v", i, got, want)
		}
		snap := relation.NewSnapshot(in)
		if s, l := SatisfiesWithSnapshot(snap, c, nil), Satisfies(in, c); s != l {
			t.Errorf("case %d: SatisfiesWithSnapshot = %v, legacy = %v", i, s, l)
		}
	}
}

// TestSnapshotDetectMissingLHSConstant covers the dictionary-miss prune:
// an LHS constant that never occurs in the column matches no tuple, so
// the pattern row contributes nothing on either path.
func TestSnapshotDetectMissingLHSConstant(t *testing.T) {
	in := fig1()
	c := MustNew(in.Schema(), []string{"CC", "zip"}, []string{"street"},
		Row([]Cell{Const(relation.Int(999)), Any()}, []Cell{Any()}))
	if want, got := Detect(in, c), snapDetect(in, c); !reflect.DeepEqual(got, want) {
		t.Fatalf("missing-LHS-constant row: got %v, want %v", got, want)
	}
	if len(snapDetect(in, c)) != 0 {
		t.Fatal("a pattern row matching no tuple produced violations")
	}
}

// TestSnapshotDetectMissingRHSConstant covers the other miss direction:
// an RHS constant absent from the column can never bind, so every
// LHS-matching tuple is a single-tuple violation.
func TestSnapshotDetectMissingRHSConstant(t *testing.T) {
	in := fig1()
	c := MustNew(in.Schema(), []string{"CC"}, []string{"city"},
		Row([]Cell{Const(relation.Int(44))}, []Cell{Const(relation.Str("EDI"))}))
	want := Detect(in, c)
	got := snapDetect(in, c)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("missing-RHS-constant: got %v, want %v", got, want)
	}
	if len(got) != 2 { // t1 and t2 have CC=44, city=NYC ≠ EDI
		t.Fatalf("got %d violations, want 2: %v", len(got), got)
	}
}

func TestSnapshotDetectTouchedMatchesLegacy(t *testing.T) {
	in := fig1()
	s := in.Schema()
	c := MustFD(s, []string{"CC", "AC"}, []string{"street"})
	street := s.MustLookup("street")
	in.Update(0, street, relation.Str("Elsewhere"))
	for _, touched := range [][]relation.TID{{0}, {1}, {0, 1, 2}, {99}, nil} {
		want := DetectTouched(in, c, touched)
		snap := relation.NewSnapshot(in)
		got := DetectTouchedWithSnapshot(snap, c, relation.BuildCodeIndex(snap, c.LHS()), touched)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("touched %v: got %v, want %v", touched, got, want)
		}
	}
}

// TestSnapshotExhaustiveMatchesLegacy checks the quadratic pair mode the
// conflict hypergraph depends on.
func TestSnapshotExhaustiveMatchesLegacy(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("a"), relation.Str("x"))
	in.MustInsert(relation.Str("a"), relation.Str("y"))
	in.MustInsert(relation.Str("a"), relation.Str("z"))
	in.MustInsert(relation.Str("b"), relation.Str("x"))
	c := MustFD(s, []string{"A"}, []string{"B"})
	want := DetectExhaustiveWithIndex(in, c, nil)
	snap := relation.NewSnapshot(in)
	got := DetectExhaustiveWithSnapshot(snap, c, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("exhaustive pairs diverge:\n got %v\nwant %v", got, want)
	}
	if len(got) != 3 { // pairs (0,1), (0,2), (1,2) on B
		t.Fatalf("got %d pairs, want 3", len(got))
	}
}

// TestLhsCodeIndexRebuilds checks the validation mirror of lhsIndex: a
// nil, foreign-snapshot or wrong-position index is rebuilt, not misused.
func TestLhsCodeIndexRebuilds(t *testing.T) {
	in := fig1()
	c := MustFD(in.Schema(), []string{"CC", "AC"}, []string{"city"})
	snap := relation.NewSnapshot(in)
	wrong := relation.BuildCodeIndex(snap, []int{0, 6})
	other := relation.NewSnapshot(in)
	foreign := relation.BuildCodeIndex(other, c.LHS())
	want := Detect(in, c)
	for name, cx := range map[string]*relation.CodeIndex{"nil": nil, "wrongPos": wrong, "foreignSnap": foreign} {
		if got := DetectWithSnapshot(snap, c, cx); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: got %v, want %v", name, got, want)
		}
	}
}
