package md

import (
	"fmt"
	"sort"

	"repro/internal/similarity"
)

// RCK derivation (Section 3.3): derive keys relative to (Y1, Y2) from a
// set of MDs and minimize them into relative candidate keys, to be used
// as matching rules on unreliable data. The paper reports (citing [38])
// that derived RCKs improve both the quality and efficiency of object
// identification; the match package's benchmarks reproduce that claim.

// DeriveOptions bounds the backward-chaining search.
type DeriveOptions struct {
	// MaxDepth bounds resolution steps per candidate (default 8).
	MaxDepth int
	// MaxCandidates bounds the number of raw candidates explored
	// (default 4096).
	MaxCandidates int
}

func (o DeriveOptions) withDefaults() DeriveOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4096
	}
	return o
}

// DeriveRCKs derives relative candidate keys for (y1, y2) from Σ:
// backward-chain from the target ⇋ conclusion through Σ's MDs until the
// open goals contain no ⇋ premise (yielding a relative key), verify each
// candidate against Σ with Implies, minimize (drop premises, weaken
// operators along the containment order), and discard keys dominated by
// strictly smaller ones. Results are deterministic and sorted by length.
func DeriveRCKs(set []*MD, y1, y2 []string, opts DeriveOptions) ([]*MD, error) {
	opts = opts.withDefaults()
	if len(set) == 0 {
		return nil, fmt.Errorf("md: no MDs to derive from")
	}
	left, right := set[0].left, set[0].right
	yl, err := left.Positions(y1)
	if err != nil {
		return nil, fmt.Errorf("md: %v", err)
	}
	yr, err := right.Positions(y2)
	if err != nil {
		return nil, fmt.Errorf("md: %v", err)
	}
	if len(yl) != len(yr) {
		return nil, fmt.Errorf("md: |Y1| must equal |Y2|")
	}

	// A goal is a required fact (pair, op). The initial goal set is the
	// pairwise ⇋ of the target lists.
	type goal struct {
		pair AttrPair
		op   similarity.Op
	}
	goalKey := func(gs []goal) string {
		ss := make([]string, len(gs))
		for i, g := range gs {
			ss[i] = fmt.Sprintf("%d:%d:%s", g.pair.L, g.pair.R, g.op)
		}
		sort.Strings(ss)
		out := ""
		for _, s := range ss {
			out += s + "|"
		}
		return out
	}

	var initial []goal
	for i := range yl {
		initial = append(initial, goal{AttrPair{yl[i], yr[i]}, similarity.MatchOp()})
	}

	type state struct {
		goals []goal
		depth int
	}
	queue := []state{{goals: initial}}
	visited := map[string]bool{goalKey(initial): true}
	var rawKeys []*MD
	explored := 0

	hasMatchGoal := func(gs []goal) bool {
		for _, g := range gs {
			if g.op.IsMatch() {
				return true
			}
		}
		return false
	}
	mkKey := func(gs []goal) (*MD, error) {
		// Deduplicate premise goals.
		seen := make(map[string]bool)
		var prems []PremiseSpec
		for _, g := range gs {
			k := fmt.Sprintf("%d:%d:%s", g.pair.L, g.pair.R, g.op)
			if seen[k] {
				continue
			}
			seen[k] = true
			prems = append(prems, PremiseSpec{
				Left:  left.Attr(g.pair.L).Name,
				Right: right.Attr(g.pair.R).Name,
				Op:    g.op,
			})
		}
		return New(left, right, prems, y1, y2, similarity.MatchOp())
	}

	for len(queue) > 0 && explored < opts.MaxCandidates {
		st := queue[0]
		queue = queue[1:]
		explored++
		if !hasMatchGoal(st.goals) && len(st.goals) > 0 {
			if key, err := mkKey(st.goals); err == nil && Implies(set, key) {
				rawKeys = append(rawKeys, key)
			}
			continue
		}
		if st.depth >= opts.MaxDepth {
			continue
		}
		// Ground: a ⇋ goal can be discharged directly by an equality
		// premise, since every operator subsumes equality (this is how
		// the paper's rck2/rck3 use '=' on LN/SN where the source MDs
		// demand ⇋).
		for gi, g := range st.goals {
			if !g.op.IsMatch() {
				continue
			}
			rest := make([]goal, 0, len(st.goals))
			rest = append(rest, st.goals[:gi]...)
			rest = append(rest, st.goals[gi+1:]...)
			rest = append(rest, goal{g.pair, similarity.Eq()})
			if k := goalKey(rest); !visited[k] {
				visited[k] = true
				queue = append(queue, state{goals: rest, depth: st.depth + 1})
			}
		}
		// Resolve: pick each MD whose conclusion supplies at least one
		// open goal; replace all goals it supplies with its premises.
		for _, m := range set {
			zl, zr, op := m.Conclusion()
			supplies := func(g goal) bool {
				if op.IsMatch() {
					for i := range zl {
						if (AttrPair{zl[i], zr[i]}) == g.pair && g.op.Contains(similarity.MatchOp()) {
							return true
						}
					}
					return false
				}
				return len(zl) == 1 && (AttrPair{zl[0], zr[0]}) == g.pair && g.op.Contains(op)
			}
			any := false
			var rest []goal
			for _, g := range st.goals {
				if supplies(g) {
					any = true
				} else {
					rest = append(rest, g)
				}
			}
			if !any {
				continue
			}
			for _, p := range m.premises {
				rest = append(rest, goal{p.pairCopy(), p.Op})
			}
			k := goalKey(rest)
			if !visited[k] {
				visited[k] = true
				queue = append(queue, state{goals: rest, depth: st.depth + 1})
			}
		}
	}

	// Weakening and premise-minimization, then dominance filtering.
	universe := weakeningUniverse(set)
	var minimized []*MD
	for _, key := range rawKeys {
		minimized = append(minimized, minimizeKey(set, key, universe))
	}
	return filterCandidates(minimized), nil
}

func (p Premise) pairCopy() AttrPair { return p.Pair }

// weakeningUniverse lists the candidate operators for weakening premises:
// everything mentioned in Σ plus equality, without ⇋.
func weakeningUniverse(set []*MD) []similarity.Op {
	ops := opUniverse(set, nil)
	out := ops[:0]
	for _, op := range ops {
		if !op.IsMatch() {
			out = append(out, op)
		}
	}
	return out
}

// minimizeKey greedily (a) drops premises and (b) weakens premise
// operators along the containment order, as long as Σ still implies the
// key. The result is minimal w.r.t. single-step shrinking.
func minimizeKey(set []*MD, key *MD, universe []similarity.Op) *MD {
	cur := key.Clone()
	// Drop premises.
	for i := 0; i < len(cur.premises); {
		trial := cur.Clone()
		trial.premises = append(trial.premises[:i], trial.premises[i+1:]...)
		if len(trial.premises) > 0 && Implies(set, trial) {
			cur = trial
			continue
		}
		i++
	}
	// Weaken operators: replace each premise op with a strictly weaker
	// (containing) operator when implication survives.
	for i := range cur.premises {
		for {
			improved := false
			for _, weaker := range universe {
				if weaker == cur.premises[i].Op || !weaker.Contains(cur.premises[i].Op) {
					continue
				}
				trial := cur.Clone()
				trial.premises[i].Op = weaker
				if Implies(set, trial) {
					cur = trial
					improved = true
					break
				}
			}
			if !improved {
				break
			}
		}
	}
	return cur
}

// filterCandidates deduplicates and removes keys strictly dominated by a
// smaller key (the RCK condition: no ψ′ < ψ).
func filterCandidates(keys []*MD) []*MD {
	seen := make(map[string]bool)
	var uniq []*MD
	for _, k := range keys {
		if id := k.Key(); !seen[id] {
			seen[id] = true
			uniq = append(uniq, k)
		}
	}
	var out []*MD
	for i, k := range uniq {
		dominated := false
		for j, other := range uniq {
			if i == j {
				continue
			}
			if other.LessEq(k) && !k.LessEq(other) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Length() != out[j].Length() {
			return out[i].Length() < out[j].Length()
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}
