// Package md implements matching dependencies (MDs) from Section 3 of Fan
// (PODS 2008): dependencies across two relations defined with
// domain-specific similarity operators and the matching operator ⇋,
//
//	⋀_j R1[X1[j]] ≈j R2[X2[j]]  →  R1[Z1] ⇋ R2[Z2],
//
// together with relative keys and relative candidate keys (RCKs), the
// generic implication analysis of Theorem 4.8 (sound PTIME closure over
// the operators' generic axioms), and RCK derivation by backward chaining
// plus minimization — the paper's route to deducing new matching rules
// from given ones.
package md

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/similarity"
)

// AttrPair is a pair of attribute positions, left in R1 and right in R2.
type AttrPair struct {
	L, R int
}

// Premise is one conjunct R1[X1[j]] ≈j R2[X2[j]].
type Premise struct {
	Pair AttrPair
	Op   similarity.Op
}

// MD is a matching dependency on a pair of relation schemas.
type MD struct {
	left, right *relation.Schema
	premises    []Premise
	conclL      []int // Z1 positions
	conclR      []int // Z2 positions
	conclOp     similarity.Op
}

// PremiseSpec names one premise for the constructor.
type PremiseSpec struct {
	Left  string
	Right string
	Op    similarity.Op
}

// New builds an MD. Premise and conclusion attribute pairs must be
// kind-compatible; a non-⇋ conclusion operator requires a single
// conclusion pair (similarity operators have no generic list
// decomposition axiom, unlike ⇋).
func New(left, right *relation.Schema, prems []PremiseSpec, conclL, conclR []string, conclOp similarity.Op) (*MD, error) {
	if len(prems) == 0 {
		return nil, fmt.Errorf("md: empty premise")
	}
	if len(conclL) == 0 || len(conclL) != len(conclR) {
		return nil, fmt.Errorf("md: conclusion lists must be nonempty and of equal length")
	}
	if !conclOp.IsMatch() && len(conclL) != 1 {
		return nil, fmt.Errorf("md: non-⇋ conclusion must be a single attribute pair")
	}
	m := &MD{left: left, right: right, conclOp: conclOp}
	for _, p := range prems {
		lp, ok := left.Lookup(p.Left)
		if !ok {
			return nil, fmt.Errorf("md: %s has no attribute %q", left.Name(), p.Left)
		}
		rp, ok := right.Lookup(p.Right)
		if !ok {
			return nil, fmt.Errorf("md: %s has no attribute %q", right.Name(), p.Right)
		}
		if left.Attr(lp).Domain.Kind() != right.Attr(rp).Domain.Kind() {
			return nil, fmt.Errorf("md: %s.%s and %s.%s are not compatible", left.Name(), p.Left, right.Name(), p.Right)
		}
		m.premises = append(m.premises, Premise{Pair: AttrPair{lp, rp}, Op: p.Op})
	}
	for i := range conclL {
		lp, ok := left.Lookup(conclL[i])
		if !ok {
			return nil, fmt.Errorf("md: %s has no attribute %q", left.Name(), conclL[i])
		}
		rp, ok := right.Lookup(conclR[i])
		if !ok {
			return nil, fmt.Errorf("md: %s has no attribute %q", right.Name(), conclR[i])
		}
		if left.Attr(lp).Domain.Kind() != right.Attr(rp).Domain.Kind() {
			return nil, fmt.Errorf("md: conclusion pair %s/%s not compatible", conclL[i], conclR[i])
		}
		m.conclL = append(m.conclL, lp)
		m.conclR = append(m.conclR, rp)
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(left, right *relation.Schema, prems []PremiseSpec, conclL, conclR []string, conclOp similarity.Op) *MD {
	m, err := New(left, right, prems, conclL, conclR, conclOp)
	if err != nil {
		panic(err)
	}
	return m
}

// Left returns R1's schema.
func (m *MD) Left() *relation.Schema { return m.left }

// Right returns R2's schema.
func (m *MD) Right() *relation.Schema { return m.right }

// Premises returns the premise conjuncts (not to be modified).
func (m *MD) Premises() []Premise { return m.premises }

// Conclusion returns the Z1, Z2 position lists and the conclusion
// operator.
func (m *MD) Conclusion() ([]int, []int, similarity.Op) {
	return m.conclL, m.conclR, m.conclOp
}

// IsRelativeKey reports whether the MD is a key relative to its
// conclusion lists: conclusion operator ⇋ and no ⇋ among the premise
// operators (Section 3.2).
func (m *MD) IsRelativeKey() bool {
	if !m.conclOp.IsMatch() {
		return false
	}
	for _, p := range m.premises {
		if p.Op.IsMatch() {
			return false
		}
	}
	return true
}

// Length returns the number of premise conjuncts (the paper's key
// length k).
func (m *MD) Length() int { return len(m.premises) }

// String renders the MD in the paper's notation.
func (m *MD) String() string {
	prems := make([]string, len(m.premises))
	for i, p := range m.premises {
		prems[i] = fmt.Sprintf("%s[%s] %s %s[%s]",
			m.left.Name(), m.left.Attr(p.Pair.L).Name, p.Op,
			m.right.Name(), m.right.Attr(p.Pair.R).Name)
	}
	ln := make([]string, len(m.conclL))
	rn := make([]string, len(m.conclR))
	for i := range m.conclL {
		ln[i] = m.left.Attr(m.conclL[i]).Name
		rn[i] = m.right.Attr(m.conclR[i]).Name
	}
	return fmt.Sprintf("%s → %s[%s] %s %s[%s]",
		strings.Join(prems, " ∧ "),
		m.left.Name(), strings.Join(ln, ","), m.conclOp, m.right.Name(), strings.Join(rn, ","))
}

// Clone returns a deep copy.
func (m *MD) Clone() *MD {
	return &MD{
		left:     m.left,
		right:    m.right,
		premises: append([]Premise(nil), m.premises...),
		conclL:   append([]int(nil), m.conclL...),
		conclR:   append([]int(nil), m.conclR...),
		conclOp:  m.conclOp,
	}
}

// Key canonicalizes the MD for deduplication.
func (m *MD) Key() string {
	ps := append([]Premise(nil), m.premises...)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Pair != ps[j].Pair {
			if ps[i].Pair.L != ps[j].Pair.L {
				return ps[i].Pair.L < ps[j].Pair.L
			}
			return ps[i].Pair.R < ps[j].Pair.R
		}
		return ps[i].Op.String() < ps[j].Op.String()
	})
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "%d:%d:%s|", p.Pair.L, p.Pair.R, p.Op)
	}
	b.WriteString(">>")
	for i := range m.conclL {
		fmt.Fprintf(&b, "%d:%d|", m.conclL[i], m.conclR[i])
	}
	b.WriteString(m.conclOp.String())
	return b.String()
}

// LessEq implements the paper's ψ ≤ ψ′ order on keys relative to the same
// (Y1, Y2): ψ ≤ ψ′ iff every premise pair of ψ occurs in ψ′ with an
// operator contained in ψ's (ψ asks fewer, weaker conditions). A relative
// candidate key is a key with no strictly smaller key.
func (m *MD) LessEq(other *MD) bool {
	if m.Length() > other.Length() {
		return false
	}
	for _, p := range m.premises {
		found := false
		for _, q := range other.premises {
			if p.Pair == q.Pair && p.Op.Contains(q.Op) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// RelativeKey builds a key (X1, X2, C) relative to (Y1, Y2) — the
// Example 3.2 notation — as an MD with conclusion ⇋.
func RelativeKey(left, right *relation.Schema, x1, x2 []string, ops []similarity.Op, y1, y2 []string) (*MD, error) {
	if len(x1) != len(x2) || len(x1) != len(ops) {
		return nil, fmt.Errorf("md: relative key needs |X1| = |X2| = |C|")
	}
	prems := make([]PremiseSpec, len(x1))
	for i := range x1 {
		if ops[i].IsMatch() {
			return nil, fmt.Errorf("md: relative keys must not use ⇋ in the hypothesis")
		}
		prems[i] = PremiseSpec{Left: x1[i], Right: x2[i], Op: ops[i]}
	}
	return New(left, right, prems, y1, y2, similarity.MatchOp())
}

// MustRelativeKey is RelativeKey that panics on error.
func MustRelativeKey(left, right *relation.Schema, x1, x2 []string, ops []similarity.Op, y1, y2 []string) *MD {
	m, err := RelativeKey(left, right, x1, x2, ops, y1, y2)
	if err != nil {
		panic(err)
	}
	return m
}
