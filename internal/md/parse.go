package md

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/relation"
	"repro/internal/similarity"
)

// Text format for matching dependencies, one per line:
//
//	md card/billing: tel = phn -> addr <=> post
//	md card/billing: email <=> email -> [FN,LN] <=> [FN,SN]
//	md card/billing: LN <=> SN, addr <=> post, FN ~edit(0.8) FN -> [FN,LN,addr,tel,email] <=> [FN,SN,post,phn,email]
//
// Premises are comma-separated "L <op> R" conjuncts; operators are
// '=' (equality), '<=>' (the ⇋ matching operator), '~edit(θ)',
// '~jaro(θ)', '~jw(θ)', '~qgram(q,θ)' and '~soundex'. The conclusion is
// a single pair or bracketed lists. Blank lines and '#' comments are
// ignored.

// Parse reads MDs in the text format. Schemas are resolved by the
// "left/right" relation names in the header.
func Parse(r io.Reader, schemas map[string]*relation.Schema) ([]*MD, error) {
	sc := bufio.NewScanner(r)
	var out []*MD
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !strings.HasPrefix(text, "md ") {
			return nil, fmt.Errorf("md: line %d: want 'md <left>/<right>: ...'", line)
		}
		m, err := parseMD(text[3:], schemas)
		if err != nil {
			return nil, fmt.Errorf("md: line %d: %v", line, err)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseString is Parse over a string.
func ParseString(s string, schemas map[string]*relation.Schema) ([]*MD, error) {
	return Parse(strings.NewReader(s), schemas)
}

func parseMD(s string, schemas map[string]*relation.Schema) (*MD, error) {
	header, rest, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("missing ':' after relations")
	}
	leftName, rightName, ok := strings.Cut(strings.TrimSpace(header), "/")
	if !ok {
		return nil, fmt.Errorf("want '<left>/<right>', got %q", header)
	}
	left, ok := schemas[strings.TrimSpace(leftName)]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", leftName)
	}
	right, ok := schemas[strings.TrimSpace(rightName)]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", rightName)
	}
	premPart, conclPart, ok := strings.Cut(rest, "->")
	if !ok {
		return nil, fmt.Errorf("missing '->'")
	}
	var prems []PremiseSpec
	for _, conj := range splitConjuncts(premPart) {
		l, op, r, err := parseConjunct(conj)
		if err != nil {
			return nil, err
		}
		prems = append(prems, PremiseSpec{Left: l, Right: r, Op: op})
	}
	conclL, conclR, conclOp, err := parseConclusion(conclPart)
	if err != nil {
		return nil, err
	}
	return New(left, right, prems, conclL, conclR, conclOp)
}

// splitConjuncts splits premises on commas outside parentheses (so that
// "~qgram(2,0.6)" survives).
func splitConjuncts(s string) []string {
	var out []string
	depth := 0
	var cur strings.Builder
	for _, r := range s {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case r == ',' && depth == 0:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	out = append(out, cur.String())
	return out
}

// parseConjunct parses "L <op> R".
func parseConjunct(s string) (string, similarity.Op, string, error) {
	s = strings.TrimSpace(s)
	// Operator search: "<=>" first (it contains '='), then "~...", then "=".
	if l, r, ok := strings.Cut(s, "<=>"); ok {
		return strings.TrimSpace(l), similarity.MatchOp(), strings.TrimSpace(r), nil
	}
	if i := strings.Index(s, "~"); i >= 0 {
		l := strings.TrimSpace(s[:i])
		rest := s[i+1:]
		op, r, err := parseSimOp(rest)
		if err != nil {
			return "", similarity.Op{}, "", err
		}
		return l, op, strings.TrimSpace(r), nil
	}
	if l, r, ok := strings.Cut(s, "="); ok {
		return strings.TrimSpace(l), similarity.Eq(), strings.TrimSpace(r), nil
	}
	return "", similarity.Op{}, "", fmt.Errorf("conjunct %q: no operator", s)
}

// parseSimOp parses "edit(0.8) FN" style operator + right attribute.
func parseSimOp(s string) (similarity.Op, string, error) {
	name := s
	args := ""
	rest := ""
	if i := strings.Index(s, "("); i >= 0 {
		name = s[:i]
		j := strings.Index(s, ")")
		if j < i {
			return similarity.Op{}, "", fmt.Errorf("operator %q: unbalanced parentheses", s)
		}
		args = s[i+1 : j]
		rest = s[j+1:]
	} else if i := strings.IndexByte(s, ' '); i >= 0 {
		name = s[:i]
		rest = s[i:]
	}
	name = strings.TrimSpace(name)
	theta := func() (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(args), 64)
		if err != nil {
			return 0, fmt.Errorf("operator %s: bad threshold %q", name, args)
		}
		return v, nil
	}
	switch name {
	case "edit":
		v, err := theta()
		if err != nil {
			return similarity.Op{}, "", err
		}
		return similarity.EditOp(v), rest, nil
	case "jaro":
		v, err := theta()
		if err != nil {
			return similarity.Op{}, "", err
		}
		return similarity.JaroOp(v), rest, nil
	case "jw":
		v, err := theta()
		if err != nil {
			return similarity.Op{}, "", err
		}
		return similarity.JWOp(v), rest, nil
	case "qgram":
		qs, ts, ok := strings.Cut(args, ",")
		if !ok {
			return similarity.Op{}, "", fmt.Errorf("qgram wants (q, θ)")
		}
		q, err := strconv.Atoi(strings.TrimSpace(qs))
		if err != nil {
			return similarity.Op{}, "", fmt.Errorf("qgram: bad q %q", qs)
		}
		th, err := strconv.ParseFloat(strings.TrimSpace(ts), 64)
		if err != nil {
			return similarity.Op{}, "", fmt.Errorf("qgram: bad θ %q", ts)
		}
		return similarity.QGramOp(q, th), rest, nil
	case "soundex":
		return similarity.SoundexOp(), rest, nil
	default:
		return similarity.Op{}, "", fmt.Errorf("unknown similarity operator %q", name)
	}
}

// parseConclusion parses "L <op> R" or "[L1,...] <op> [R1,...]".
func parseConclusion(s string) ([]string, []string, similarity.Op, error) {
	s = strings.TrimSpace(s)
	var opStr string
	var op similarity.Op
	switch {
	case strings.Contains(s, "<=>"):
		opStr, op = "<=>", similarity.MatchOp()
	case strings.Contains(s, "~"):
		// Single-pair similarity conclusion.
		l, o, r, err := parseConjunct(s)
		if err != nil {
			return nil, nil, similarity.Op{}, err
		}
		return []string{l}, []string{r}, o, nil
	case strings.Contains(s, "="):
		opStr, op = "=", similarity.Eq()
	default:
		return nil, nil, similarity.Op{}, fmt.Errorf("conclusion %q: no operator", s)
	}
	l, r, _ := strings.Cut(s, opStr)
	ls, err := parseList(l)
	if err != nil {
		return nil, nil, similarity.Op{}, err
	}
	rs, err := parseList(r)
	if err != nil {
		return nil, nil, similarity.Op{}, err
	}
	return ls, rs, op, nil
}

func parseList(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := s[1 : len(s)-1]
		parts := strings.Split(inner, ",")
		out := make([]string, len(parts))
		for i, p := range parts {
			out[i] = strings.TrimSpace(p)
			if out[i] == "" {
				return nil, fmt.Errorf("empty attribute in list %q", s)
			}
		}
		return out, nil
	}
	if s == "" {
		return nil, fmt.Errorf("empty attribute list")
	}
	return []string{s}, nil
}

// Format renders MDs in the Parse text format.
func Format(w io.Writer, set []*MD) error {
	for _, m := range set {
		var prems []string
		for _, p := range m.premises {
			prems = append(prems, fmt.Sprintf("%s %s %s",
				m.left.Attr(p.Pair.L).Name, opText(p.Op), m.right.Attr(p.Pair.R).Name))
		}
		ln := make([]string, len(m.conclL))
		rn := make([]string, len(m.conclR))
		for i := range m.conclL {
			ln[i] = m.left.Attr(m.conclL[i]).Name
			rn[i] = m.right.Attr(m.conclR[i]).Name
		}
		concl := fmt.Sprintf("[%s] %s [%s]", strings.Join(ln, ","), opText(m.conclOp), strings.Join(rn, ","))
		if len(m.conclL) == 1 {
			concl = fmt.Sprintf("%s %s %s", ln[0], opText(m.conclOp), rn[0])
		}
		if _, err := fmt.Fprintf(w, "md %s/%s: %s -> %s\n",
			m.left.Name(), m.right.Name(), strings.Join(prems, ", "), concl); err != nil {
			return err
		}
	}
	return nil
}

func opText(op similarity.Op) string {
	switch op.Metric {
	case similarity.Equality:
		return "="
	case similarity.Match:
		return "<=>"
	case similarity.Edit:
		return fmt.Sprintf("~edit(%g)", op.Theta)
	case similarity.JaroM:
		return fmt.Sprintf("~jaro(%g)", op.Theta)
	case similarity.JaroWinklerM:
		return fmt.Sprintf("~jw(%g)", op.Theta)
	case similarity.QGram:
		return fmt.Sprintf("~qgram(%d,%g)", op.Q, op.Theta)
	default:
		return "~soundex"
	}
}
