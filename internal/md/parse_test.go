package md_test

import (
	"strings"
	"testing"

	"repro/internal/md"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/similarity"
)

func mdSchemas() map[string]*relation.Schema {
	return map[string]*relation.Schema{
		"card":    paperdata.CardSchema(),
		"billing": paperdata.BillingSchema(),
	}
}

// TestParseSigma1 parses the Example 3.1 MDs from text and checks they
// drive the same implications as the programmatic fixtures.
func TestParseSigma1(t *testing.T) {
	text := `
# Example 3.1
md card/billing: tel = phn -> addr <=> post
md card/billing: email <=> email -> [FN,LN] <=> [FN,SN]
md card/billing: LN <=> SN, addr <=> post, FN <=> FN -> [FN,LN,addr,tel,email] <=> [FN,SN,post,phn,email]
md card/billing: LN <=> SN, addr <=> post, FN ~edit(0.8) FN -> [FN,LN,addr,tel,email] <=> [FN,SN,post,phn,email]
`
	set, err := md.ParseString(text, mdSchemas())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("parsed %d MDs, want 4", len(set))
	}
	// The parsed Σ1 implies the paper's rck2.
	rck2 := md.MustRelativeKey(paperdata.CardSchema(), paperdata.BillingSchema(),
		[]string{"LN", "tel", "FN"}, []string{"SN", "phn", "FN"},
		[]similarity.Op{similarity.Eq(), similarity.Eq(), similarity.EditOp(0.8)},
		paperdata.Yc(), paperdata.Yb())
	if !md.Implies(set, rck2) {
		t.Error("parsed Σ1 must imply rck2")
	}

	// Round trip.
	var sb strings.Builder
	if err := md.Format(&sb, set); err != nil {
		t.Fatal(err)
	}
	again, err := md.ParseString(sb.String(), mdSchemas())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if len(again) != 4 {
		t.Fatalf("round trip lost MDs")
	}
	for i := range set {
		if set[i].Key() != again[i].Key() {
			t.Errorf("round trip changed MD %d:\n%v\n%v", i, set[i], again[i])
		}
	}
}

func TestParseOperatorVariants(t *testing.T) {
	text := `md card/billing: FN ~jaro(0.9) FN, LN ~jw(0.85) SN, addr ~qgram(2,0.6) post, email ~soundex email -> cno <=> cno
md card/billing: tel = phn -> FN ~edit(0.7) FN
`
	set, err := md.ParseString(text, mdSchemas())
	if err != nil {
		t.Fatal(err)
	}
	prems := set[0].Premises()
	wantOps := []similarity.Op{
		similarity.JaroOp(0.9), similarity.JWOp(0.85),
		similarity.QGramOp(2, 0.6), similarity.SoundexOp(),
	}
	for i, p := range prems {
		if p.Op != wantOps[i] {
			t.Errorf("premise %d op = %v, want %v", i, p.Op, wantOps[i])
		}
	}
	// Similarity conclusion on a single pair.
	_, _, op := set[1].Conclusion()
	if op != similarity.EditOp(0.7) {
		t.Errorf("conclusion op = %v", op)
	}
	// Round trip of the exotic line.
	var sb strings.Builder
	if err := md.Format(&sb, set); err != nil {
		t.Fatal(err)
	}
	if _, err := md.ParseString(sb.String(), mdSchemas()); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
}

func TestParseMDErrors(t *testing.T) {
	bad := []string{
		"card/billing: tel = phn -> addr <=> post\n",             // missing 'md '
		"md card: tel = phn -> addr <=> post\n",                  // missing right relation
		"md ghost/billing: tel = phn -> addr <=> post\n",         // unknown left
		"md card/ghost: tel = phn -> addr <=> post\n",            // unknown right
		"md card/billing tel = phn -> addr <=> post\n",           // missing ':'
		"md card/billing: tel = phn addr <=> post\n",             // missing '->'
		"md card/billing: tel ? phn -> addr <=> post\n",          // bad operator
		"md card/billing: tel ~edit(x) phn -> addr <=> post\n",   // bad threshold
		"md card/billing: tel ~qgram(2) phn -> addr <=> post\n",  // qgram needs θ
		"md card/billing: tel ~wobble(1) phn -> addr <=> post\n", // unknown metric
		"md card/billing: tel = phn -> addr\n",                   // no conclusion op
		"md card/billing: tel = phn -> [FN,LN] <=> [FN]\n",       // unbalanced lists
		"md card/billing: tel = phn -> [] <=> []\n",              // empty lists
		"md card/billing: ghost = phn -> addr <=> post\n",        // unknown attribute
	}
	for _, text := range bad {
		if _, err := md.ParseString(text, mdSchemas()); err == nil {
			t.Errorf("want parse error for %q", text)
		}
	}
}
