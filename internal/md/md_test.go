package md_test

import (
	"testing"

	"repro/internal/md"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/similarity"
)

// sigma1 builds Σ1 of Example 4.3: the MDs φ1–φ4 of Example 3.1 over the
// card/billing schemas of Section 3.1.
func sigma1() (left, right *relation.Schema, set []*md.MD) {
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	eq := similarity.Eq()
	match := similarity.MatchOp()
	ed := similarity.EditOp(0.8) // the paper's ≈d (edit distance based)

	phi1 := md.MustNew(card, billing,
		[]md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
		[]string{"addr"}, []string{"post"}, match)
	phi2 := md.MustNew(card, billing,
		[]md.PremiseSpec{{Left: "email", Right: "email", Op: match}},
		[]string{"FN", "LN"}, []string{"FN", "SN"}, match)
	phi3 := md.MustNew(card, billing,
		[]md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: match},
			{Left: "addr", Right: "post", Op: match},
			{Left: "FN", Right: "FN", Op: match},
		},
		paperdata.Yc(), paperdata.Yb(), match)
	phi4 := md.MustNew(card, billing,
		[]md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: match},
			{Left: "addr", Right: "post", Op: match},
			{Left: "FN", Right: "FN", Op: ed},
		},
		paperdata.Yc(), paperdata.Yb(), match)
	return card, billing, []*md.MD{phi1, phi2, phi3, phi4}
}

// rcks builds rck1–rck3 of Example 3.2.
func rcks(card, billing *relation.Schema) []*md.MD {
	eq := similarity.Eq()
	ed := similarity.EditOp(0.8)
	rck1 := md.MustRelativeKey(card, billing,
		[]string{"email", "addr"}, []string{"email", "post"},
		[]similarity.Op{eq, eq}, paperdata.Yc(), paperdata.Yb())
	rck2 := md.MustRelativeKey(card, billing,
		[]string{"LN", "tel", "FN"}, []string{"SN", "phn", "FN"},
		[]similarity.Op{eq, eq, ed}, paperdata.Yc(), paperdata.Yb())
	rck3 := md.MustRelativeKey(card, billing,
		[]string{"LN", "addr", "FN"}, []string{"SN", "post", "FN"},
		[]similarity.Op{eq, eq, ed}, paperdata.Yc(), paperdata.Yb())
	return []*md.MD{rck1, rck2, rck3}
}

// TestExample43RCKImplication reproduces Example 4.3: Σ1 ⊨m rck_i for
// each i ∈ [1,3].
func TestExample43RCKImplication(t *testing.T) {
	card, billing, set := sigma1()
	for i, rck := range rcks(card, billing) {
		if !md.Implies(set, rck) {
			t.Errorf("Σ1 ⊨m rck%d failed: %v", i+1, rck)
		}
	}
}

// TestImplicationNegative: without the bridging MDs the keys are not
// implied, and an unrelated conclusion never follows.
func TestImplicationNegative(t *testing.T) {
	card, billing, set := sigma1()
	keys := rcks(card, billing)
	// Without φ2 (email bridge), rck1 is no longer derivable.
	noPhi2 := []*md.MD{set[0], set[2], set[3]}
	if md.Implies(noPhi2, keys[0]) {
		t.Error("rck1 should need φ2")
	}
	// Without φ1 (tel/phn → addr/post), rck2 is no longer derivable.
	noPhi1 := []*md.MD{set[1], set[2], set[3]}
	if md.Implies(noPhi1, keys[1]) {
		t.Error("rck2 should need φ1")
	}
	// An unrelated conclusion (cno ⇋ item) never follows.
	bogus := md.MustNew(card, billing,
		[]md.PremiseSpec{{Left: "tel", Right: "phn", Op: similarity.Eq()}},
		[]string{"cno"}, []string{"item"}, similarity.MatchOp())
	if md.Implies(set, bogus) {
		t.Error("unrelated conclusion must not be implied")
	}
	// Weakening the premise below the registered operator also fails:
	// rck2 with edit threshold lower than ≈d is weaker, hence not implied
	// unless containment covers it.
	weak := md.MustRelativeKey(card, billing,
		[]string{"LN", "tel", "FN"}, []string{"SN", "phn", "FN"},
		[]similarity.Op{similarity.Eq(), similarity.Eq(), similarity.EditOp(0.5)},
		paperdata.Yc(), paperdata.Yb())
	if md.Implies(set, weak) {
		t.Error("a weaker premise (edit≥0.5) must not satisfy φ4's ≈d (edit≥0.8)")
	}
	// While a stronger premise (edit≥0.9 ⊆ edit≥0.8) still works.
	strong := md.MustRelativeKey(card, billing,
		[]string{"LN", "tel", "FN"}, []string{"SN", "phn", "FN"},
		[]similarity.Op{similarity.Eq(), similarity.Eq(), similarity.EditOp(0.9)},
		paperdata.Yc(), paperdata.Yb())
	if !md.Implies(set, strong) {
		t.Error("a stronger premise must still derive the key")
	}
}

func TestMDConstructorValidation(t *testing.T) {
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	eq := similarity.Eq()
	if _, err := md.New(card, billing, nil, []string{"addr"}, []string{"post"}, similarity.MatchOp()); err == nil {
		t.Error("want error for empty premise")
	}
	if _, err := md.New(card, billing,
		[]md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
		nil, nil, similarity.MatchOp()); err == nil {
		t.Error("want error for empty conclusion")
	}
	if _, err := md.New(card, billing,
		[]md.PremiseSpec{{Left: "ghost", Right: "phn", Op: eq}},
		[]string{"addr"}, []string{"post"}, similarity.MatchOp()); err == nil {
		t.Error("want error for unknown premise attribute")
	}
	if _, err := md.New(card, billing,
		[]md.PremiseSpec{{Left: "tel", Right: "price", Op: eq}},
		[]string{"addr"}, []string{"post"}, similarity.MatchOp()); err == nil {
		t.Error("want error for kind-incompatible premise (string vs real)")
	}
	if _, err := md.New(card, billing,
		[]md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
		[]string{"FN", "LN"}, []string{"FN", "SN"}, similarity.EditOp(0.8)); err == nil {
		t.Error("want error for non-⇋ list conclusion")
	}
	if _, err := md.RelativeKey(card, billing,
		[]string{"tel"}, []string{"phn"}, []similarity.Op{similarity.MatchOp()},
		paperdata.Yc(), paperdata.Yb()); err == nil {
		t.Error("relative keys must reject ⇋ premises")
	}
	if _, err := md.RelativeKey(card, billing,
		[]string{"tel"}, []string{"phn", "email"}, []similarity.Op{eq},
		paperdata.Yc(), paperdata.Yb()); err == nil {
		t.Error("want error for unbalanced lists")
	}
}

func TestRelativeKeyPredicate(t *testing.T) {
	card, billing, set := sigma1()
	keys := rcks(card, billing)
	for i, k := range keys {
		if !k.IsRelativeKey() {
			t.Errorf("rck%d must be a relative key", i+1)
		}
		if k.Length() == 0 {
			t.Errorf("rck%d length 0", i+1)
		}
	}
	// φ2 and φ3 have ⇋ premises: not relative keys.
	if set[1].IsRelativeKey() || set[2].IsRelativeKey() {
		t.Error("MDs with ⇋ premises are not relative keys")
	}
	// φ1 has no ⇋ premise and a ⇋ conclusion: it is a key relative to
	// (addr, post).
	if !set[0].IsRelativeKey() {
		t.Error("φ1 is a key relative to ([addr],[post])")
	}
	for _, m := range set {
		if m.String() == "" {
			t.Error("String must render")
		}
	}
}

func TestLessEqOrder(t *testing.T) {
	card, billing, _ := sigma1()
	keys := rcks(card, billing)
	// rck1 and rck2 are incomparable.
	if keys[0].LessEq(keys[1]) || keys[1].LessEq(keys[0]) {
		t.Error("rck1 and rck2 must be incomparable")
	}
	// A key with a premise dropped is ≤ the original.
	shorter := md.MustRelativeKey(card, billing,
		[]string{"LN", "tel"}, []string{"SN", "phn"},
		[]similarity.Op{similarity.Eq(), similarity.Eq()},
		paperdata.Yc(), paperdata.Yb())
	if !shorter.LessEq(keys[1]) {
		t.Error("dropping a premise gives a smaller key")
	}
	if keys[1].LessEq(shorter) {
		t.Error("the longer key must not be ≤ the shorter one")
	}
	// Weakening an operator gives a smaller key: edit≥0.5 contains
	// edit≥0.8, so the 0.5 variant asks less.
	weaker := md.MustRelativeKey(card, billing,
		[]string{"LN", "tel", "FN"}, []string{"SN", "phn", "FN"},
		[]similarity.Op{similarity.Eq(), similarity.Eq(), similarity.EditOp(0.5)},
		paperdata.Yc(), paperdata.Yb())
	if !weaker.LessEq(keys[1]) || keys[1].LessEq(weaker) {
		t.Error("operator weakening must strictly shrink the key")
	}
	// Every key is ≤ itself.
	if !keys[1].LessEq(keys[1]) {
		t.Error("LessEq must be reflexive")
	}
}

// TestDeriveRCKs reproduces the Section 3.3/4.2 workflow: derive relative
// candidate keys from Σ1 and verify they include (keys at least as small
// as) the paper's rck1–rck3.
func TestDeriveRCKs(t *testing.T) {
	card, billing, set := sigma1()
	derived, err := md.DeriveRCKs(set, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(derived) == 0 {
		t.Fatal("no RCKs derived")
	}
	for _, k := range derived {
		if !k.IsRelativeKey() {
			t.Errorf("derived key is not a relative key: %v", k)
		}
		if !md.Implies(set, k) {
			t.Errorf("derived key not implied by Σ1: %v", k)
		}
	}
	// Every paper key is dominated by (or equal to) some derived key.
	for i, paper := range rcks(card, billing) {
		covered := false
		for _, k := range derived {
			if k.LessEq(paper) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("rck%d not covered by derived keys:\npaper: %v\nderived: %v", i+1, paper, derived)
		}
	}
	// No derived key dominates another (candidate-key minimality).
	for i, a := range derived {
		for j, b := range derived {
			if i != j && a.LessEq(b) && !b.LessEq(a) {
				t.Errorf("derived set not minimal: %v < %v", a, b)
			}
		}
	}
	if _, err := md.DeriveRCKs(nil, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{}); err == nil {
		t.Error("want error for empty Σ")
	}
	if _, err := md.DeriveRCKs(set, []string{"ghost"}, []string{"item"}, md.DeriveOptions{}); err == nil {
		t.Error("want error for unknown target attribute")
	}
}

func TestMinimalCoverMD(t *testing.T) {
	card, billing, set := sigma1()
	// Add a redundant MD: rck3 is implied by Σ1.
	redundant := rcks(card, billing)[2]
	cover := md.MinimalCover(append(append([]*md.MD(nil), set...), redundant))
	if len(cover) >= len(set)+1 {
		t.Errorf("cover did not shrink: %d MDs", len(cover))
	}
	for _, m := range set {
		if !md.Implies(cover, m) {
			t.Errorf("cover lost %v", m)
		}
	}
}

func TestImpliesSelfAndClone(t *testing.T) {
	_, _, set := sigma1()
	for _, m := range set {
		if !md.Implies([]*md.MD{m}, m) {
			t.Errorf("m ⊭ m for %v", m)
		}
		c := m.Clone()
		if c.Key() != m.Key() {
			t.Error("clone changed identity")
		}
	}
}
