package md

import (
	"sort"

	"repro/internal/similarity"
)

// Generic implication analysis for MDs (Section 4.2, Theorem 4.8):
// Σ ⊨m φ iff for every instance and all interpretations of the similarity
// and matching operators satisfying their generic axioms, enforcing Σ
// enforces φ. The decision procedure is a PTIME fixpoint closure over
// "similarity facts" — assertions (attribute pair, operator) known to hold
// between the generic tuple pair (t1, t2) — applying:
//
//   - operator containment: a fact (p, op) yields (p, op′) for every
//     op′ ⊇ op (equality subsumption is the special case op = '=');
//   - MD firing: an MD whose premises are all entailed by current facts
//     adds its conclusion facts; a ⇋ conclusion over lists adds the
//     pairwise ⇋ facts (the paper's pairwise-iff-listwise axiom for ⇋).
//
// The closure is sound for ⊨m; it decides all of the paper's worked
// examples (Example 4.3) and is the engine behind RCK derivation.

// factSet tracks known facts per attribute pair.
type factSet map[AttrPair]map[similarity.Op]bool

func (f factSet) add(p AttrPair, op similarity.Op) bool {
	m, ok := f[p]
	if !ok {
		m = make(map[similarity.Op]bool)
		f[p] = m
	}
	if m[op] {
		return false
	}
	m[op] = true
	return true
}

// entails reports whether the facts for pair p entail "p related by req":
// some known fact operator is contained in req.
func (f factSet) entails(p AttrPair, req similarity.Op) bool {
	for op := range f[p] {
		if req.Contains(op) {
			return true
		}
	}
	return false
}

// opUniverse collects the operators mentioned by Σ and φ plus equality
// and ⇋; the containment closure stays within this finite set.
func opUniverse(set []*MD, phi *MD) []similarity.Op {
	seen := make(map[similarity.Op]bool)
	var out []similarity.Op
	add := func(op similarity.Op) {
		if !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	add(similarity.Eq())
	add(similarity.MatchOp())
	collect := func(m *MD) {
		if m == nil {
			return
		}
		for _, p := range m.premises {
			add(p.Op)
		}
		_, _, c := m.Conclusion()
		add(c)
	}
	for _, m := range set {
		collect(m)
	}
	collect(phi)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// closure computes the fixpoint of facts under containment and MD firing.
func closure(set []*MD, init factSet, universe []similarity.Op) factSet {
	facts := init
	for changed := true; changed; {
		changed = false
		// Containment closure.
		for p, ops := range facts {
			for op := range ops {
				for _, big := range universe {
					if big.Contains(op) && !ops[big] {
						facts.add(p, big)
						changed = true
					}
				}
			}
		}
		// MD firing.
		for _, m := range set {
			fires := true
			for _, prem := range m.premises {
				if !facts.entails(prem.Pair, prem.Op) {
					fires = false
					break
				}
			}
			if !fires {
				continue
			}
			zl, zr, op := m.Conclusion()
			if op.IsMatch() {
				for i := range zl {
					if facts.add(AttrPair{zl[i], zr[i]}, similarity.MatchOp()) {
						changed = true
					}
				}
			} else if facts.add(AttrPair{zl[0], zr[0]}, op) {
				changed = true
			}
		}
	}
	return facts
}

// Implies decides Σ ⊨m φ via the closure: assume φ's premises as facts
// and check that φ's conclusion becomes derivable.
func Implies(set []*MD, phi *MD) bool {
	universe := opUniverse(set, phi)
	facts := make(factSet)
	for _, p := range phi.premises {
		facts.add(p.Pair, p.Op)
	}
	facts = closure(set, facts, universe)
	zl, zr, op := phi.Conclusion()
	if op.IsMatch() {
		for i := range zl {
			if !facts.entails(AttrPair{zl[i], zr[i]}, similarity.MatchOp()) {
				return false
			}
		}
		return true
	}
	return facts.entails(AttrPair{zl[0], zr[0]}, op)
}

// MinimalCover removes MDs implied by the rest of the set.
func MinimalCover(set []*MD) []*MD {
	work := append([]*MD(nil), set...)
	for i := 0; i < len(work); {
		rest := make([]*MD, 0, len(work)-1)
		rest = append(rest, work[:i]...)
		rest = append(rest, work[i+1:]...)
		if len(rest) > 0 && Implies(rest, work[i]) {
			work = rest
			continue
		}
		i++
	}
	return work
}
