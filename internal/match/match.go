// Package match implements the object identification pipeline of
// Section 3.1 of Fan (PODS 2008): deciding which tuples of two unreliable
// sources refer to the same real-world object, using matching
// dependencies and relative (candidate) keys as matching rules. The
// pipeline is blocking → rule evaluation (either direct relative-key
// comparison or MD fixpoint inference) → transitive clustering, with
// precision/recall evaluation against a ground truth — the harness behind
// the paper's claim that derived RCKs improve match quality.
package match

import (
	"fmt"
	"sort"

	"repro/internal/md"
	"repro/internal/relation"
	"repro/internal/similarity"
)

// Pair identifies a matched (left TID, right TID) tuple pair.
type Pair struct {
	L, R relation.TID
}

// BlockFn assigns blocking keys to a tuple; only pairs sharing at least
// one key are compared. left reports which side the tuple comes from.
type BlockFn func(left bool, t relation.Tuple) []string

// SoundexBlocker blocks on the Soundex code of one attribute per side — a
// standard cheap blocking scheme for person records.
func SoundexBlocker(leftSchema, rightSchema *relation.Schema, leftAttr, rightAttr string) (BlockFn, error) {
	lp, ok := leftSchema.Lookup(leftAttr)
	if !ok {
		return nil, fmt.Errorf("match: %s has no attribute %q", leftSchema.Name(), leftAttr)
	}
	rp, ok := rightSchema.Lookup(rightAttr)
	if !ok {
		return nil, fmt.Errorf("match: %s has no attribute %q", rightSchema.Name(), rightAttr)
	}
	return func(left bool, t relation.Tuple) []string {
		p := lp
		if !left {
			p = rp
		}
		return []string{similarity.Soundex(t[p].StrVal())}
	}, nil
}

// Matcher runs matching rules over a pair of instances.
type Matcher struct {
	Left, Right *relation.Instance
	// Rules are the matching rules: MDs over (Left, Right schemas).
	// Relative keys evaluate premises directly with their similarity
	// operators; MDs with ⇋ premises participate through the fixpoint
	// (UseFixpoint).
	Rules []*md.MD
	// TargetL, TargetR name the identity lists (Y1, Y2): a pair matches
	// when every target attribute pair is inferred to match.
	TargetL, TargetR []string
	// Blocker, when set, restricts candidate pairs.
	Blocker BlockFn
	// UseFixpoint applies MDs with ⇋ premises by per-pair fixpoint
	// inference (derived facts feed later premises). When false, only
	// relative keys fire, each evaluated in one shot.
	UseFixpoint bool
}

// Pairs returns all matched pairs in deterministic order.
func (m *Matcher) Pairs() ([]Pair, error) {
	yl, err := m.Left.Schema().Positions(m.TargetL)
	if err != nil {
		return nil, fmt.Errorf("match: %v", err)
	}
	yr, err := m.Right.Schema().Positions(m.TargetR)
	if err != nil {
		return nil, fmt.Errorf("match: %v", err)
	}
	if len(yl) != len(yr) {
		return nil, fmt.Errorf("match: unbalanced target lists")
	}
	for _, rule := range m.Rules {
		if !m.UseFixpoint && !rule.IsRelativeKey() {
			return nil, fmt.Errorf("match: rule %v has ⇋ premises; enable UseFixpoint", rule)
		}
	}
	var out []Pair
	lIDs := m.Left.IDs()
	rIDs := m.Right.IDs()
	candidates := m.candidates(lIDs, rIDs)
	for _, c := range candidates {
		t1, _ := m.Left.Tuple(c.L)
		t2, _ := m.Right.Tuple(c.R)
		if m.pairMatches(t1, t2, yl, yr) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].L != out[j].L {
			return out[i].L < out[j].L
		}
		return out[i].R < out[j].R
	})
	return out, nil
}

// candidates enumerates tuple pairs, via blocking when configured.
func (m *Matcher) candidates(lIDs, rIDs []relation.TID) []Pair {
	if m.Blocker == nil {
		out := make([]Pair, 0, len(lIDs)*len(rIDs))
		for _, l := range lIDs {
			for _, r := range rIDs {
				out = append(out, Pair{l, r})
			}
		}
		return out
	}
	buckets := make(map[string][]relation.TID)
	for _, r := range rIDs {
		t, _ := m.Right.Tuple(r)
		for _, k := range m.Blocker(false, t) {
			buckets[k] = append(buckets[k], r)
		}
	}
	seen := make(map[Pair]bool)
	var out []Pair
	for _, l := range lIDs {
		t, _ := m.Left.Tuple(l)
		for _, k := range m.Blocker(true, t) {
			for _, r := range buckets[k] {
				p := Pair{l, r}
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	return out
}

// pairMatches decides whether the tuple pair matches on the target lists.
func (m *Matcher) pairMatches(t1, t2 relation.Tuple, yl, yr []int) bool {
	if !m.UseFixpoint {
		for _, rule := range m.Rules {
			if !ruleCoversTarget(rule, yl, yr) {
				continue
			}
			if EvaluateKey(rule, t1, t2) {
				return true
			}
		}
		return false
	}
	facts := InferMatches(m.Rules, t1, t2)
	for i := range yl {
		if !facts[md.AttrPair{L: yl[i], R: yr[i]}] {
			return false
		}
	}
	return true
}

// ruleCoversTarget reports whether the rule's conclusion covers every
// target pair.
func ruleCoversTarget(rule *md.MD, yl, yr []int) bool {
	zl, zr, op := rule.Conclusion()
	if !op.IsMatch() {
		return false
	}
	covered := make(map[md.AttrPair]bool, len(zl))
	for i := range zl {
		covered[md.AttrPair{L: zl[i], R: zr[i]}] = true
	}
	for i := range yl {
		if !covered[md.AttrPair{L: yl[i], R: yr[i]}] {
			return false
		}
	}
	return true
}

// EvaluateKey evaluates a relative key directly on a tuple pair: every
// premise similarity must hold on the actual values.
func EvaluateKey(key *md.MD, t1, t2 relation.Tuple) bool {
	for _, p := range key.Premises() {
		if !p.Op.Similar(t1[p.Pair.L], t2[p.Pair.R]) {
			return false
		}
	}
	return true
}

// InferMatches runs the per-pair fixpoint of Section 3.3's dynamic
// reading of MDs: a premise holds if its similarity operator accepts the
// actual values or the pair was already inferred to match (matched values
// are identified, so any operator subsequently relates them); firing an
// MD adds its conclusion's pairwise ⇋ facts. The returned set maps
// attribute pairs to inferred-match status.
func InferMatches(rules []*md.MD, t1, t2 relation.Tuple) map[md.AttrPair]bool {
	facts := make(map[md.AttrPair]bool)
	for changed := true; changed; {
		changed = false
		for _, rule := range rules {
			fires := true
			for _, p := range rule.Premises() {
				if facts[p.Pair] {
					continue
				}
				if p.Op.IsMatch() {
					// ⇋ premises need an inferred fact or value equality.
					if !t1[p.Pair.L].Equal(t2[p.Pair.R]) {
						fires = false
						break
					}
					continue
				}
				if !p.Op.Similar(t1[p.Pair.L], t2[p.Pair.R]) {
					fires = false
					break
				}
			}
			if !fires {
				continue
			}
			zl, zr, op := rule.Conclusion()
			if !op.IsMatch() {
				continue
			}
			for i := range zl {
				pr := md.AttrPair{L: zl[i], R: zr[i]}
				if !facts[pr] {
					facts[pr] = true
					changed = true
				}
			}
		}
	}
	return facts
}

// Cluster computes the transitive closure of matched pairs across the two
// relations (the ⇋ operator is transitive) and returns the clusters with
// at least one tuple from each side, as (left TIDs, right TIDs) pairs in
// deterministic order.
func Cluster(pairs []Pair) (clusters [][2][]relation.TID) {
	parent := make(map[[2]int64]([2]int64))
	var find func(x [2]int64) [2]int64
	find = func(x [2]int64) [2]int64 {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	union := func(a, b [2]int64) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, p := range pairs {
		union([2]int64{0, int64(p.L)}, [2]int64{1, int64(p.R)})
	}
	groups := make(map[[2]int64][2][]relation.TID)
	for node := range parent {
		root := find(node)
		g := groups[root]
		g[node[0]] = append(g[node[0]], relation.TID(node[1]))
		groups[root] = g
	}
	for _, g := range groups {
		if len(g[0]) == 0 || len(g[1]) == 0 {
			continue
		}
		sort.Slice(g[0], func(i, j int) bool { return g[0][i] < g[0][j] })
		sort.Slice(g[1], func(i, j int) bool { return g[1][i] < g[1][j] })
		clusters = append(clusters, g)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0][0] < clusters[j][0][0] })
	return clusters
}

// Quality summarizes match quality against a ground truth.
type Quality struct {
	Precision float64
	Recall    float64
	F1        float64
	TruePos   int
	FalsePos  int
	FalseNeg  int
}

// String renders the quality summary.
func (q Quality) String() string {
	return fmt.Sprintf("precision=%.3f recall=%.3f f1=%.3f (tp=%d fp=%d fn=%d)",
		q.Precision, q.Recall, q.F1, q.TruePos, q.FalsePos, q.FalseNeg)
}

// Evaluate compares matched pairs against the ground truth.
func Evaluate(got, truth []Pair) Quality {
	truthSet := make(map[Pair]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}
	gotSet := make(map[Pair]bool, len(got))
	var q Quality
	for _, p := range got {
		if gotSet[p] {
			continue
		}
		gotSet[p] = true
		if truthSet[p] {
			q.TruePos++
		} else {
			q.FalsePos++
		}
	}
	for _, p := range truth {
		if !gotSet[p] {
			q.FalseNeg++
		}
	}
	if q.TruePos+q.FalsePos > 0 {
		q.Precision = float64(q.TruePos) / float64(q.TruePos+q.FalsePos)
	}
	if q.TruePos+q.FalseNeg > 0 {
		q.Recall = float64(q.TruePos) / float64(q.TruePos+q.FalseNeg)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}
