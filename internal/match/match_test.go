package match_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/md"
	"repro/internal/paperdata"
	"repro/internal/relation"
	"repro/internal/similarity"
)

// sigma1 rebuilds the Example 3.1 MDs φ1–φ4.
func sigma1() (card, billing *relation.Schema, set []*md.MD) {
	card = paperdata.CardSchema()
	billing = paperdata.BillingSchema()
	eq := similarity.Eq()
	m := similarity.MatchOp()
	ed := similarity.EditOp(0.8)
	set = []*md.MD{
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
			[]string{"addr"}, []string{"post"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "email", Right: "email", Op: m}},
			[]string{"FN", "LN"}, []string{"FN", "SN"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: m}, {Left: "addr", Right: "post", Op: m}, {Left: "FN", Right: "FN", Op: m}},
			paperdata.Yc(), paperdata.Yb(), m),
		md.MustNew(card, billing, []md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: m}, {Left: "addr", Right: "post", Op: m}, {Left: "FN", Right: "FN", Op: ed}},
			paperdata.Yc(), paperdata.Yb(), m),
	}
	return card, billing, set
}

// givenRules are the paper's hand-written matching rules rck1 and rck3
// (the comparison vectors practitioners start from).
func givenRules(card, billing *relation.Schema) []*md.MD {
	eq := similarity.Eq()
	ed := similarity.EditOp(0.8)
	return []*md.MD{
		md.MustRelativeKey(card, billing,
			[]string{"email", "addr"}, []string{"email", "post"},
			[]similarity.Op{eq, eq}, paperdata.Yc(), paperdata.Yb()),
		md.MustRelativeKey(card, billing,
			[]string{"LN", "addr", "FN"}, []string{"SN", "post", "FN"},
			[]similarity.Op{eq, eq, ed}, paperdata.Yc(), paperdata.Yb()),
	}
}

func TestMatcherOnCleanPairs(t *testing.T) {
	cardS, billingS, _ := sigma1()
	card, billing, truth := gen.CardBilling(gen.CardBillingConfig{NPersons: 60, Seed: 3})
	m := &match.Matcher{
		Left: card, Right: billing,
		Rules:   givenRules(cardS, billingS),
		TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
	}
	pairs, err := m.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	var truthPairs []match.Pair
	for _, p := range truth {
		truthPairs = append(truthPairs, match.Pair{L: p[0], R: p[1]})
	}
	q := match.Evaluate(pairs, truthPairs)
	if q.Recall < 0.99 || q.Precision < 0.99 {
		t.Errorf("clean data should match perfectly: %v", q)
	}
}

// TestDerivedRCKsImproveRecall reproduces the paper's central claim about
// derived rules (Section 3.1): pairs whose addresses radically differ are
// missed by the given rules but identified by RCKs derived from Σ1 via
// implication analysis.
func TestDerivedRCKsImproveRecall(t *testing.T) {
	cardS, billingS, set := sigma1()
	card, billing, truth := gen.CardBilling(gen.CardBillingConfig{
		NPersons:        120,
		Seed:            7,
		AbbrevRate:      0.15,
		TypoRate:        0.1,
		AddrDivergeRate: 0.3,
	})
	var truthPairs []match.Pair
	for _, p := range truth {
		truthPairs = append(truthPairs, match.Pair{L: p[0], R: p[1]})
	}

	given := &match.Matcher{
		Left: card, Right: billing,
		Rules:   givenRules(cardS, billingS),
		TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
	}
	gp, err := given.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	qGiven := match.Evaluate(gp, truthPairs)

	derived, err := md.DeriveRCKs(set, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withDerived := &match.Matcher{
		Left: card, Right: billing,
		Rules:   append(append([]*md.MD(nil), givenRules(cardS, billingS)...), derived...),
		TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
	}
	dp, err := withDerived.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	qDerived := match.Evaluate(dp, truthPairs)

	if qDerived.Recall <= qGiven.Recall {
		t.Errorf("derived RCKs must improve recall: given %v, derived %v", qGiven, qDerived)
	}
	if qDerived.Precision < 0.99 {
		t.Errorf("derived RCKs should not hurt precision here: %v", qDerived)
	}
	// The given rules demonstrably miss the diverged-address pairs.
	if qGiven.Recall > 0.9 {
		t.Errorf("test setup: given-rule recall should visibly suffer, got %v", qGiven)
	}
}

// TestFixpointMatchesMDChain: with UseFixpoint, the raw MDs φ1–φ4 (which
// have ⇋ premises) identify pairs via inference chains — e.g. equal tel
// derives addr ⇋ post (φ1), feeding φ4.
func TestFixpointMatchesMDChain(t *testing.T) {
	_, _, set := sigma1()
	card, billing, truth := gen.CardBilling(gen.CardBillingConfig{
		NPersons:        80,
		Seed:            11,
		AddrDivergeRate: 0.4,
	})
	var truthPairs []match.Pair
	for _, p := range truth {
		truthPairs = append(truthPairs, match.Pair{L: p[0], R: p[1]})
	}
	m := &match.Matcher{
		Left: card, Right: billing,
		Rules:   set,
		TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
		UseFixpoint: true,
	}
	pairs, err := m.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	q := match.Evaluate(pairs, truthPairs)
	if q.Recall < 0.99 {
		t.Errorf("fixpoint over Σ1 should identify all pairs (tel is shared): %v", q)
	}
	// Without the fixpoint, rules with ⇋ premises must be rejected.
	m.UseFixpoint = false
	if _, err := m.Pairs(); err == nil {
		t.Error("⇋-premise rules require UseFixpoint")
	}
}

func TestBlockingReducesCandidatesNotRecall(t *testing.T) {
	cardS, billingS, set := sigma1()
	card, billing, truth := gen.CardBilling(gen.CardBillingConfig{NPersons: 100, Seed: 19})
	var truthPairs []match.Pair
	for _, p := range truth {
		truthPairs = append(truthPairs, match.Pair{L: p[0], R: p[1]})
	}
	blocker, err := match.SoundexBlocker(cardS, billingS, "LN", "SN")
	if err != nil {
		t.Fatal(err)
	}
	derived, err := md.DeriveRCKs(set, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := &match.Matcher{
		Left: card, Right: billing,
		Rules:   derived,
		TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
		Blocker: blocker,
	}
	pairs, err := m.Pairs()
	if err != nil {
		t.Fatal(err)
	}
	q := match.Evaluate(pairs, truthPairs)
	if q.Recall < 0.99 {
		t.Errorf("soundex blocking on identical last names must not lose matches: %v", q)
	}
	if _, err := match.SoundexBlocker(cardS, billingS, "ghost", "SN"); err == nil {
		t.Error("want error for unknown blocking attribute")
	}
	if _, err := match.SoundexBlocker(cardS, billingS, "LN", "ghost"); err == nil {
		t.Error("want error for unknown right blocking attribute")
	}
}

func TestClusterTransitivity(t *testing.T) {
	// Two card tuples matching the same billing tuple land in one cluster
	// (⇋ is transitive).
	pairs := []match.Pair{{L: 0, R: 5}, {L: 1, R: 5}, {L: 2, R: 7}}
	clusters := match.Cluster(pairs)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	if len(clusters[0][0]) != 2 || len(clusters[0][1]) != 1 {
		t.Errorf("first cluster = %v, want two left TIDs sharing right 5", clusters[0])
	}
	if clusters[1][0][0] != 2 || clusters[1][1][0] != 7 {
		t.Errorf("second cluster = %v", clusters[1])
	}
	if got := match.Cluster(nil); len(got) != 0 {
		t.Errorf("empty input yields no clusters, got %v", got)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	q := match.Evaluate(nil, nil)
	if q.Precision != 0 || q.Recall != 0 || q.F1 != 0 {
		t.Errorf("empty evaluation: %v", q)
	}
	q = match.Evaluate([]match.Pair{{L: 1, R: 1}, {L: 1, R: 1}}, []match.Pair{{L: 1, R: 1}})
	if q.TruePos != 1 || q.FalsePos != 0 {
		t.Errorf("duplicate matches must count once: %v", q)
	}
	if q.String() == "" {
		t.Error("String must render")
	}
	m := &match.Matcher{
		Left:    relation.NewInstance(paperdata.CardSchema()),
		Right:   relation.NewInstance(paperdata.BillingSchema()),
		TargetL: []string{"ghost"}, TargetR: []string{"item"},
	}
	if _, err := m.Pairs(); err == nil {
		t.Error("want error for unknown target attribute")
	}
	m.TargetL = paperdata.Yc()
	m.TargetR = []string{"item"}
	if _, err := m.Pairs(); err == nil {
		t.Error("want error for unbalanced targets")
	}
}

func TestEvaluateKeyDirect(t *testing.T) {
	cardS, billingS, _ := sigma1()
	key := md.MustRelativeKey(cardS, billingS,
		[]string{"FN"}, []string{"FN"},
		[]similarity.Op{similarity.EditOp(0.8)},
		[]string{"FN"}, []string{"FN"})
	card := relation.NewInstance(cardS)
	billing := relation.NewInstance(billingS)
	mk := func(in *relation.Instance, vals ...string) relation.Tuple {
		t := make(relation.Tuple, in.Schema().Arity())
		for i := range t {
			t[i] = relation.Str("")
		}
		t[in.Schema().MustLookup("FN")] = relation.Str(vals[0])
		return t
	}
	if !match.EvaluateKey(key, mk(card, "James"), mk(billing, "Jamis")) {
		t.Error("one edit on a 5-letter name is ≥0.8 similar")
	}
	if match.EvaluateKey(key, mk(card, "James"), mk(billing, "Ruth")) {
		t.Error("unrelated names must not match")
	}
}
