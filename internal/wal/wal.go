// Package wal is the durable write-ahead log behind serve's ingest
// loop: every committed batch is appended as one CRC-framed record and
// fsynced before the commit is acknowledged, so an acknowledged commit
// survives kill -9.
//
// On disk a log is a directory of segment files, each a magic header
// followed by back-to-back frames:
//
//	offset 0:  uint32 LE  payload length N
//	offset 4:  uint32 LE  CRC32C over bytes [8, 16+N) (seq + payload)
//	offset 8:  uint64 LE  sequence number (strictly increasing)
//	offset 16: payload    (oplog wire text of one commit batch)
//
// Open scans every segment: a frame that is short, oversized, fails its
// CRC, or regresses the sequence marks a torn tail. A torn tail is legal
// only in the final segment (a crash mid-append); there it is truncated
// away and appending resumes after the last good frame. The same damage
// in an earlier segment means acknowledged history is unreachable, so
// Open refuses with a CorruptError instead of silently dropping it.
//
// Group commit: Append fsyncs once every SyncEvery records (default 1 —
// sync before every append returns), or when SyncInterval has elapsed
// since the oldest unsynced record. Append reports whether the record
// is durable yet; callers holding acknowledgements until durability
// call Sync to flush the remainder (serve does so whenever its queue
// goes idle).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

const (
	magic      = "DQWAL001"
	headerSize = 16

	// MaxRecordBytes bounds one frame's payload; a length field above it
	// is treated as corruption, which keeps a bit-flipped length from
	// swallowing the rest of the segment as one absurd record.
	MaxRecordBytes = 64 << 20

	// DefaultSegmentBytes is the rotation threshold for Options.SegmentBytes.
	DefaultSegmentBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrBroken is returned once the log has failed a sync or could not
// repair a failed append: the file state is unknown, so the log goes
// fail-stop and refuses further writes (reads and Close still work).
var ErrBroken = errors.New("wal: log broken")

// CorruptError reports unrecoverable damage: a bad frame somewhere
// other than the tail of the final segment.
type CorruptError struct {
	Segment string // file path
	Offset  int64  // byte offset of the bad frame
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt segment %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// Options parameterizes Open. The zero value syncs every append and
// rotates segments at DefaultSegmentBytes.
type Options struct {
	// SyncEvery is the group-commit window in records: Append fsyncs
	// once this many records have accumulated since the last sync.
	// <= 1 syncs on every append (full durability before ack).
	SyncEvery int
	// SyncInterval bounds how long an unsynced record may wait when
	// SyncEvery > 1: an Append past the deadline syncs regardless of
	// count. 0 means no time trigger (callers use Sync instead).
	SyncInterval time.Duration
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes):
	// an Append that would grow the active segment past it starts a new
	// segment first, so TruncateTo can drop checkpointed prefixes.
	SegmentBytes int64
	// Preallocate extends each fresh segment to SegmentBytes at creation
	// (and trims it back to its valid size at rotation), so steady-state
	// appends overwrite reserved blocks instead of growing the file — one
	// metadata update per segment instead of one per fsync. The zero
	// filler scans as a torn tail, so a reopened active segment is
	// trimmed like any crash tail (Stats.Torn counts it) and re-extends
	// lazily. A filesystem that cannot extend simply falls back to
	// growing appends.
	Preallocate bool
	// Wrap, when non-nil, wraps the active segment's writer — the
	// failpoint seam fault-injection tests use to return errors, short
	// writes, or silently drop bytes ("crash at byte N"). Production
	// leaves it nil.
	Wrap func(io.Writer) io.Writer
	// FS is the filesystem the log lives on (default fault.OS). The
	// fault-matrix and chaos tests pass a fault.Injector to script
	// ENOSPC, EIO-on-fsync, short writes and latency at exact call
	// counts. Production leaves it nil.
	FS fault.FS
}

// Stats is a point-in-time summary of the log for monitoring.
type Stats struct {
	Segments int    // live segment files
	Bytes    int64  // valid bytes across them (headers included)
	LastSeq  uint64 // last appended (or recovered) sequence
	Torn     int64  // bytes truncated from the tail at Open
	// AppendedBytes counts every frame byte written since Open —
	// unlike Bytes it survives TruncateTo, so rate-of-change is the
	// write bandwidth the log consumes.
	AppendedBytes int64
	// Syncs counts fsyncs of the active segment since Open.
	Syncs int64
}

// segment is one log file's scan summary.
type segment struct {
	path  string
	first uint64 // first seq in the file; 0 when empty
	last  uint64 // last seq in the file; 0 when empty
	n     int    // records
	size  int64  // valid bytes (magic + whole frames)
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends are serialized internally.
type Log struct {
	dir  string
	opts Options
	fs   fault.FS

	mu        sync.Mutex
	segs      []*segment
	f         fault.File // active (last) segment
	w         io.Writer
	lastSeq   uint64
	unsynced  int
	oldestAt  time.Time // arrival of the oldest unsynced record
	torn      int64
	appended  int64
	syncs     int64
	broken    error
	closed    bool
	headerBuf [headerSize]byte
	frameBuf  []byte // reusable frame scratch; appends serialize under mu
}

// Open opens (creating if needed) the log directory, scans every
// segment, truncates a torn tail from the final segment, and positions
// the log to append after the last good record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	fs := opts.FS
	if fs == nil {
		fs = fault.OS
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names, err := segmentNames(fs, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: fs}
	var prevSeq uint64
	for i, name := range names {
		path := filepath.Join(dir, name)
		seg, reason, err := scanSegment(fs, path, prevSeq)
		if err != nil {
			return nil, err
		}
		if reason != "" && i < len(names)-1 {
			// Damage before the final segment: records after it were
			// acknowledged and are now unreachable. Refuse.
			return nil, &CorruptError{Segment: path, Offset: seg.size, Reason: reason}
		}
		l.segs = append(l.segs, seg)
		if seg.n > 0 {
			prevSeq = seg.last
		}
	}
	l.lastSeq = prevSeq
	if len(l.segs) == 0 {
		if err := l.newSegmentLocked(); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Truncate the final segment to its valid size and open it for
	// appending.
	seg := l.segs[len(l.segs)-1]
	f, err := fs.OpenFile(seg.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > seg.size {
		l.torn = fi.Size() - seg.size
		if err := f.Truncate(seg.size); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := f.Seek(seg.size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = l.wrap(f)
	return l, nil
}

func (l *Log) wrap(w io.Writer) io.Writer {
	if l.opts.Wrap != nil {
		return l.opts.Wrap(w)
	}
	return w
}

// segmentNames lists *.wal files in lexical (== seq) order.
func segmentNames(fs fault.FS, dir string) ([]string, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment validates one file frame by frame. It returns the scan
// summary (size = valid prefix length), and a non-empty reason when the
// file has a torn/invalid tail after that prefix. Sequence numbers must
// strictly increase from prevSeq; a duplicate or regressing seq is
// treated as tail damage at that frame.
func scanSegment(fs fault.FS, path string, prevSeq uint64) (*segment, string, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	seg := &segment{path: path}
	var head [len(magic)]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		// Shorter than the magic: a crash during segment creation. Valid
		// prefix is empty; the tail (whatever bytes exist) is torn.
		return seg, "short magic header", nil
	}
	if string(head[:]) != magic {
		return seg, "bad magic header", nil
	}
	seg.size = int64(len(magic))
	var hdr [headerSize]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return seg, "", nil // clean end
			}
			return seg, "short frame header", nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if n > MaxRecordBytes {
			return seg, "oversized frame length", nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return seg, "short frame payload", nil
		}
		crc := crc32.Update(crc32.Checksum(hdr[8:16], castagnoli), castagnoli, payload)
		if crc != sum {
			return seg, "crc mismatch", nil
		}
		if seq <= prevSeq {
			return seg, fmt.Sprintf("sequence %d not above %d", seq, prevSeq), nil
		}
		prevSeq = seq
		if seg.n == 0 {
			seg.first = seq
		}
		seg.last = seq
		seg.n++
		seg.size += headerSize + int64(n)
	}
}

// newSegmentLocked closes the active segment (syncing it) and starts a
// fresh one named for the next expected sequence. Callers hold l.mu.
func (l *Log) newSegmentLocked() error {
	if l.f != nil {
		if l.opts.Preallocate && len(l.segs) > 0 {
			// Trim the preallocated filler before the segment is sealed: a
			// zero tail is legal only in the final segment, so leaving it
			// on a rotated one would make the next Open refuse the log.
			// A failed trim is as fatal as a failed sync — the sealed
			// segment would be unreadable.
			if err := l.f.Truncate(l.segs[len(l.segs)-1].size); err != nil {
				l.broken = fmt.Errorf("%w: %v", ErrBroken, err)
				return l.broken
			}
		}
		if err := l.f.Sync(); err != nil {
			l.broken = fmt.Errorf("%w: %v", ErrBroken, err)
			return l.broken
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%020d.wal", l.lastSeq+1))
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Preallocate {
		// Reserve the full segment up front; appends then overwrite the
		// filler at the current offset (Truncate does not move it)
		// instead of growing the file on every frame. Best-effort: a
		// filesystem that cannot extend keeps the growing-append
		// behavior.
		_ = f.Truncate(l.opts.SegmentBytes)
	}
	if err := syncDir(l.fs, l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = l.wrap(f)
	l.segs = append(l.segs, &segment{path: path, size: int64(len(magic))})
	return nil
}

// Append writes one record and applies the sync policy. It returns
// whether the record (and every record before it) is fsynced; when
// false the caller must treat the record as volatile until a later
// Append or Sync reports durability. On a write error Append truncates
// the partial frame away so the log stays clean; if that repair fails
// the log goes fail-stop (ErrBroken).
func (l *Log) Append(seq uint64, payload []byte) (synced bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	due, err := l.appendLocked(seq, payload)
	if err != nil {
		return false, err
	}
	if due {
		if err := l.syncLocked(); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// AppendNoSync writes one record without ever syncing, returning
// whether the sync policy is due. The caller owns the fsync: it may
// overlap other work and then call Sync (which fail-stops the log on
// error exactly like Append would have). Records are volatile until
// that Sync returns nil.
func (l *Log) AppendNoSync(seq uint64, payload []byte) (syncDue bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(seq, payload)
}

// appendLocked performs the write and bookkeeping shared by Append and
// AppendNoSync and reports whether the sync policy calls for an fsync
// now, without performing it.
func (l *Log) appendLocked(seq uint64, payload []byte) (syncDue bool, err error) {
	switch {
	case l.closed:
		return false, ErrClosed
	case l.broken != nil:
		return false, l.broken
	case seq <= l.lastSeq:
		return false, fmt.Errorf("wal: sequence %d not above %d", seq, l.lastSeq)
	case len(payload) > MaxRecordBytes:
		return false, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	seg := l.segs[len(l.segs)-1]
	frame := int64(headerSize + len(payload))
	if seg.n > 0 && seg.size+frame > l.opts.SegmentBytes {
		if err := l.newSegmentLocked(); err != nil {
			return false, err
		}
		seg = l.segs[len(l.segs)-1]
	}
	hdr := l.headerBuf[:]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(crc32.Checksum(hdr[8:16], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	// One Write call per frame: a short write can then only ever leave a
	// single partial frame at the tail, which repair (or recovery)
	// removes in one truncate. The scratch buffer is reused across
	// appends; the lock is held for the whole write, so no other frame
	// can alias it (Wrap writers must not retain the slice).
	if int64(cap(l.frameBuf)) < frame {
		l.frameBuf = make([]byte, 0, frame)
	}
	buf := l.frameBuf[:0]
	buf = append(buf, hdr...)
	buf = append(buf, payload...)
	if n, werr := l.w.Write(buf); werr != nil || n < len(buf) {
		if werr == nil {
			werr = io.ErrShortWrite
		}
		if rerr := l.repairLocked(seg.size); rerr != nil {
			return false, l.broken
		}
		return false, fmt.Errorf("wal: append: %w", werr)
	}
	seg.size += frame
	l.appended += frame
	if seg.n == 0 {
		seg.first = seq
	}
	seg.last = seq
	seg.n++
	l.lastSeq = seq
	if l.unsynced == 0 {
		l.oldestAt = time.Now()
	}
	l.unsynced++
	due := l.opts.SyncEvery <= 1 ||
		l.unsynced >= l.opts.SyncEvery ||
		(l.opts.SyncInterval > 0 && time.Since(l.oldestAt) >= l.opts.SyncInterval)
	return due, nil
}

// repairLocked truncates the active segment back to off after a failed
// append. Failure to repair marks the log broken.
func (l *Log) repairLocked(off int64) error {
	if err := l.f.Truncate(off); err != nil {
		l.broken = fmt.Errorf("%w: repair failed: %v", ErrBroken, err)
		return l.broken
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		l.broken = fmt.Errorf("%w: repair failed: %v", ErrBroken, err)
		return l.broken
	}
	return nil
}

// Sync flushes any unsynced records to stable storage. A no-op when
// everything appended is already durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	if l.unsynced == 0 {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		// After a failed fsync the kernel may have dropped the dirty
		// pages; retrying could silently "succeed" over lost data. Fail
		// stop.
		l.broken = fmt.Errorf("%w: fsync: %v", ErrBroken, err)
		return l.broken
	}
	l.unsynced = 0
	l.syncs++
	return nil
}

// Replay streams every durable record with sequence above after, in
// order, to fn. It re-verifies CRCs as it reads (catching rot between
// Open and Replay) and stops with fn's error if fn fails.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	segs := make([]segment, len(l.segs))
	for i, s := range l.segs {
		segs[i] = *s
	}
	l.mu.Unlock()
	for _, seg := range segs {
		if seg.n == 0 || seg.last <= after {
			continue
		}
		if err := replaySegment(l.fs, seg, after, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(fs fault.FS, seg segment, after uint64, fn func(seq uint64, payload []byte) error) error {
	f, err := fs.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := io.LimitReader(f, seg.size)
	var head [len(magic)]byte
	if _, err := io.ReadFull(r, head[:]); err != nil || string(head[:]) != magic {
		return &CorruptError{Segment: seg.path, Offset: 0, Reason: "bad magic header"}
	}
	off := int64(len(magic))
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return &CorruptError{Segment: seg.path, Offset: off, Reason: "short frame header"}
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if n > MaxRecordBytes {
			return &CorruptError{Segment: seg.path, Offset: off, Reason: "oversized frame length"}
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return &CorruptError{Segment: seg.path, Offset: off, Reason: "short frame payload"}
		}
		crc := crc32.Update(crc32.Checksum(hdr[8:16], castagnoli), castagnoli, payload)
		if crc != sum {
			return &CorruptError{Segment: seg.path, Offset: off, Reason: "crc mismatch"}
		}
		if seq > after {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
		off += headerSize + int64(n)
	}
}

// TruncateTo removes whole segments whose records are all at or below
// seq — the prefix a checkpoint at seq has made redundant. The active
// segment is rotated first if it qualifies, so a fully-checkpointed log
// shrinks to one empty segment. Records above seq are always retained.
func (l *Log) TruncateTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	active := l.segs[len(l.segs)-1]
	if active.n > 0 && active.last <= seq {
		if l.broken != nil {
			return l.broken // rotation needs a healthy writer
		}
		if err := l.newSegmentLocked(); err != nil {
			return err
		}
	}
	kept := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		if i < len(l.segs)-1 && s.last <= seq {
			if err := l.fs.Remove(s.path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if removed {
		return syncDir(l.fs, l.dir)
	}
	return nil
}

// LastSeq returns the sequence of the last appended (or recovered)
// record; 0 when the log is empty.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Stats summarizes the log for monitoring endpoints.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{Segments: len(l.segs), LastSeq: l.lastSeq, Torn: l.torn, AppendedBytes: l.appended, Syncs: l.syncs}
	for _, s := range l.segs {
		st.Bytes += s.size
	}
	return st
}

// Close syncs outstanding records and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	var err error
	if l.opts.Preallocate && l.broken == nil && len(l.segs) > 0 {
		// Trim the reserved filler on a clean close so a restart does not
		// count it as a torn tail. Best-effort: Open trims it anyway.
		_ = l.f.Truncate(l.segs[len(l.segs)-1].size)
	}
	if l.unsynced > 0 && l.broken == nil {
		if serr := l.f.Sync(); serr != nil {
			err = fmt.Errorf("wal: %w", serr)
		}
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	return err
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(fs fault.FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
