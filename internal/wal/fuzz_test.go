// Native fuzz target for WAL frame decoding: an arbitrary byte blob
// dropped in as a segment file must never panic Open or Replay. The
// contract under corruption is graceful: a damaged tail is truncated
// away and replay delivers the clean prefix in strictly increasing
// sequence order; damage before the tail is a clean CorruptError.
// Seeds are real segments (written through the log itself) with the
// torn-tail corpus's mutations applied.
package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// sealedSegment builds a real segment holding n records via the log's
// own write path and returns its raw bytes.
func sealedSegment(f *testing.F, n int) []byte {
	f.Helper()
	dir := f.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		f.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := l.Append(uint64(i), []byte("insert order a,b,book,1.5\ncommit\n")); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	names, err := segmentNames(fault.OS, dir)
	if err != nil || len(names) == 0 {
		f.Fatalf("no segment written: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

func FuzzReplay(f *testing.F) {
	seg := sealedSegment(f, 3)
	f.Add(seg)
	f.Add(seg[:len(seg)-1])     // torn mid-frame
	f.Add(seg[:len(magic)])     // header only
	f.Add(seg[:len(magic)-3])   // short magic
	f.Add([]byte{})             // empty file
	f.Add([]byte("NOTAWAL!!"))  // bad magic
	flip := append([]byte(nil), seg...)
	flip[len(flip)-1] ^= 0xff
	f.Add(flip) // bit-flipped CRC in the last frame
	zero := append([]byte(nil), seg...)
	for i := len(zero) - 8; i < len(zero); i++ {
		zero[i] = 0
	}
	f.Add(zero) // zero-filled tail

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000000000000000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// A huge SyncEvery keeps the property about decoding, not disk
		// syncs — real fsyncs would cap the fuzzer at a few execs/sec.
		l, err := Open(dir, Options{SyncEvery: 1 << 30})
		if err != nil {
			return // clean refusal (e.g. mid-log corruption) is a valid outcome
		}
		defer l.Close()
		last := uint64(0)
		err = l.Replay(0, func(seq uint64, payload []byte) error {
			if seq <= last {
				t.Fatalf("replay out of order: %d after %d", seq, last)
			}
			last = seq
			return nil
		})
		if err != nil {
			t.Fatalf("Open accepted the log but Replay failed: %v", err)
		}
		// The log must stay writable after recovery: the torn tail is
		// gone and the next append slots in above the last good record.
		if _, err := l.Append(last+1, []byte("x")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
