package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
)

// appendAll writes records 1..n with deterministic payloads and returns
// the payloads by seq.
func appendAll(t *testing.T, l *Log, n int) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte, n)
	for i := 1; i <= n; i++ {
		seq := uint64(i)
		payload := []byte(fmt.Sprintf("record-%03d payload", i))
		synced, err := l.Append(seq, payload)
		if err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
		if !synced {
			t.Fatalf("Append(%d): not synced under default options", seq)
		}
		out[seq] = payload
	}
	return out
}

// replayAll collects every record with seq > after.
func replayAll(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var out []Record
	err := l.Replay(after, func(seq uint64, payload []byte) error {
		out = append(out, Record{Seq: seq, Payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

// Record pairs a replayed seq with its payload (test-local shape).
type Record struct {
	Seq     uint64
	Payload []byte
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendAll(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	recs := replayAll(t, l2, 0)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	for _, r := range recs {
		if !bytes.Equal(r.Payload, want[r.Seq]) {
			t.Fatalf("seq %d payload mismatch", r.Seq)
		}
	}
	// Replay(after) skips the prefix.
	if recs := replayAll(t, l2, 3); len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("Replay(3) = %v, want seqs 4,5", recs)
	}
	// Appending continues after recovery.
	if _, err := l2.Append(6, []byte("after recovery")); err != nil {
		t.Fatal(err)
	}
	if recs := replayAll(t, l2, 0); len(recs) != 6 {
		t.Fatalf("replayed %d records after append, want 6", len(recs))
	}
}

// frame builds a raw frame for corpus crafting.
func frame(seq uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	crc := crc32.Update(crc32.Checksum(buf[8:16], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	copy(buf[headerSize:], payload)
	return buf
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := segmentNames(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("expected 1 segment, found %v", names)
	}
	return filepath.Join(dir, names[0])
}

// TestTornTailCorpus is the table-driven corruption corpus: each case
// damages a freshly written 3-record log and asserts recovery keeps
// exactly the records before the damage, truncating the rest.
func TestTornTailCorpus(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		// wantSeqs is the full replay after recovery.
		wantSeqs []uint64
	}{
		{
			name: "truncated frame",
			corrupt: func(t *testing.T, path string) {
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				// Chop 3 bytes off record 3's payload.
				if err := os.Truncate(path, fi.Size()-3); err != nil {
					t.Fatal(err)
				}
			},
			wantSeqs: []uint64{1, 2},
		},
		{
			name: "bit-flipped crc",
			corrupt: func(t *testing.T, path string) {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				// Record 2 starts after magic + record 1's frame; flip a
				// bit in its CRC field. Everything after record 1 becomes
				// unreachable: the tail past a bad frame cannot be trusted.
				rec1 := len(frame(1, []byte("record-001 payload")))
				off := len(magic) + rec1 + 4
				data[off] ^= 0x10
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSeqs: []uint64{1},
		},
		{
			name: "zero-filled tail",
			corrupt: func(t *testing.T, path string) {
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.Write(make([]byte, 64)); err != nil {
					t.Fatal(err)
				}
			},
			wantSeqs: []uint64{1, 2, 3},
		},
		{
			name: "duplicate seq",
			corrupt: func(t *testing.T, path string) {
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				// A well-formed frame re-using seq 3: CRC passes, but the
				// sequence check stops replay before it.
				if _, err := f.Write(frame(3, []byte("imposter"))); err != nil {
					t.Fatal(err)
				}
			},
			wantSeqs: []uint64{1, 2, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, 3)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := onlySegment(t, dir)
			tc.corrupt(t, path)

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open after corruption: %v", err)
			}
			defer l2.Close()
			recs := replayAll(t, l2, 0)
			if len(recs) != len(tc.wantSeqs) {
				t.Fatalf("replayed %d records, want %d", len(recs), len(tc.wantSeqs))
			}
			for i, seq := range tc.wantSeqs {
				if recs[i].Seq != seq {
					t.Fatalf("record %d has seq %d, want %d", i, recs[i].Seq, seq)
				}
			}
			wantLast := uint64(0)
			if n := len(tc.wantSeqs); n > 0 {
				wantLast = tc.wantSeqs[n-1]
			}
			if got := l2.LastSeq(); got != wantLast {
				t.Fatalf("LastSeq = %d, want %d", got, wantLast)
			}
			// The torn tail is physically gone: append the next record and
			// a third open replays a clean history.
			next := wantLast + 1
			if _, err := l2.Append(next, []byte("resumed")); err != nil {
				t.Fatalf("Append after recovery: %v", err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			l3, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l3.Close()
			if recs := replayAll(t, l3, 0); len(recs) != len(tc.wantSeqs)+1 ||
				recs[len(recs)-1].Seq != next {
				t.Fatalf("post-recovery history wrong: %v", recs)
			}
		})
	}
}

// TestCorruptMiddleSegmentRefused: damage before the final segment is
// not a torn tail — acknowledged history would be lost — so Open fails.
func TestCorruptMiddleSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64}) // tiny: every record rotates
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(fault.OS, dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("expected multiple segments, got %v (%v)", names, err)
	}
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want CorruptError", err)
	}
}

func TestRotationAndTruncateTo(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, 6)
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, have %d segments", st.Segments)
	}
	// Checkpoint at 4: every segment fully at or below 4 goes away, and
	// replay still yields 5 and 6.
	if err := l.TruncateTo(4); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, l, 4)
	if len(recs) != 2 || recs[0].Seq != 5 || recs[1].Seq != 6 {
		t.Fatalf("after TruncateTo(4), Replay(4) = %v", recs)
	}
	// Full truncation rotates the active segment and leaves an empty log
	// that still remembers lastSeq.
	if err := l.TruncateTo(6); err != nil {
		t.Fatal(err)
	}
	if recs := replayAll(t, l, 0); len(recs) != 0 {
		t.Fatalf("after TruncateTo(6), Replay(0) = %v", recs)
	}
	if got := l.LastSeq(); got != 6 {
		t.Fatalf("LastSeq = %d, want 6", got)
	}
	if _, err := l.Append(7, []byte("after full truncate")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := replayAll(t, l2, 0); len(recs) != 1 || recs[0].Seq != 7 {
		t.Fatalf("reopened history = %v, want just seq 7", recs)
	}
}

func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wantSynced := []bool{false, false, true, false}
	for i, want := range wantSynced {
		synced, err := l.Append(uint64(i+1), []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if synced != want {
			t.Fatalf("Append %d: synced = %v, want %v", i+1, synced, want)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sync is idempotent when clean.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIntervalTrigger(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 100, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if synced, err := l.Append(1, []byte("x")); err != nil || synced {
		t.Fatalf("first append: synced=%v err=%v", synced, err)
	}
	time.Sleep(5 * time.Millisecond)
	if synced, err := l.Append(2, []byte("y")); err != nil || !synced {
		t.Fatalf("append past interval: synced=%v err=%v, want synced", synced, err)
	}
}

func TestMonotonicSeqEnforced(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, 2)
	if _, err := l.Append(2, []byte("dup")); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if _, err := l.Append(1, []byte("regress")); err == nil {
		t.Fatal("regressing seq accepted")
	}
	if _, err := l.Append(3, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// failWriter is the failpoint seam: passes bytes through until limit
// total bytes have been written, then fails according to mode.
type failWriter struct {
	w       io.Writer
	limit   int
	written int
	mode    string // "error", "short", "discard"
}

func (fw *failWriter) Write(p []byte) (int, error) {
	room := fw.limit - fw.written
	if room >= len(p) {
		n, err := fw.w.Write(p)
		fw.written += n
		return n, err
	}
	switch fw.mode {
	case "error":
		return 0, errors.New("injected write error")
	case "short":
		if room > 0 {
			n, err := fw.w.Write(p[:room])
			fw.written += n
			if err != nil {
				return n, err
			}
			return n, io.ErrShortWrite
		}
		return 0, io.ErrShortWrite
	case "discard":
		// Simulated crash: the head of the frame may land, the rest never
		// reaches the disk, and the process never learns.
		if room > 0 {
			n, err := fw.w.Write(p[:room])
			fw.written += n
			if err != nil {
				return n, err
			}
		}
		fw.written = fw.limit
		return len(p), nil
	}
	panic("unknown mode")
}

// TestAppendErrorRepair: a failed append must leave the log clean so
// later appends (and recovery) see no partial frame.
func TestAppendErrorRepair(t *testing.T) {
	for _, mode := range []string{"error", "short"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			var fw *failWriter
			l, err := Open(dir, Options{
				Wrap: func(w io.Writer) io.Writer {
					fw = &failWriter{w: w, limit: 1 << 30, mode: mode}
					return fw
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, 2)
			// Next frame fails partway through.
			fw.limit = fw.written + 7
			if _, err := l.Append(3, []byte("doomed record")); err == nil {
				t.Fatal("expected injected failure")
			}
			// Transient fault clears; the same seq retries cleanly.
			fw.limit = 1 << 30
			if synced, err := l.Append(3, []byte("retried record")); err != nil || !synced {
				t.Fatalf("retry: synced=%v err=%v", synced, err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			recs := replayAll(t, l2, 0)
			if len(recs) != 3 || string(recs[2].Payload) != "retried record" {
				t.Fatalf("recovered history = %v", recs)
			}
			if st := l2.Stats(); st.Torn != 0 {
				t.Fatalf("repair left %d torn bytes for recovery", st.Torn)
			}
		})
	}
}

// TestCrashAtByteN: the discard failpoint models the process dying after
// byte N reached the disk. Recovery keeps exactly the fully-written
// frames and truncates the partial one.
func TestCrashAtByteN(t *testing.T) {
	dir := t.TempDir()
	var fw *failWriter
	l, err := Open(dir, Options{
		Wrap: func(w io.Writer) io.Writer {
			fw = &failWriter{w: w, limit: 1 << 30, mode: "discard"}
			return fw
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 2)
	fw.limit = fw.written + 9 // frame 3 tears 9 bytes in
	if synced, err := l.Append(3, []byte("torn record")); err != nil || !synced {
		// The process believes the append (and even the fsync) succeeded.
		t.Fatalf("crash-mode append: synced=%v err=%v", synced, err)
	}
	// No Close: the "process" is dead. Reopen the directory.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2, 0)
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want the 2 before the crash point", len(recs))
	}
	if st := l2.Stats(); st.Torn != 9 {
		t.Fatalf("Torn = %d, want 9", st.Torn)
	}
	if _, err := l2.Append(3, []byte("resumed")); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("op "), 85) // ~256 B, one small commit batch
	for _, every := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("syncEvery=%d", every), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{SyncEvery: every})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(uint64(i+1), payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestPreallocate checks the segment reservation lifecycle: the active
// segment is extended to SegmentBytes at creation, rotation trims the
// sealed segment back to its valid bytes (so recovery never sees a
// zero-filled tail on a non-final segment), and a reopen over the
// reserved filler of the final segment treats it as a torn tail and
// resumes cleanly.
func TestPreallocate(t *testing.T) {
	dir := t.TempDir()
	const segBytes = 128
	l, err := Open(dir, Options{SegmentBytes: segBytes, Preallocate: true})
	if err != nil {
		t.Fatal(err)
	}
	sizeOf := func(path string) int64 {
		t.Helper()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	segPaths := func() []string {
		t.Helper()
		m, err := filepath.Glob(filepath.Join(dir, "*.wal"))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if _, err := l.Append(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	paths := segPaths()
	if len(paths) != 1 {
		t.Fatalf("segments = %v, want 1", paths)
	}
	if got := sizeOf(paths[0]); got != segBytes {
		t.Fatalf("active segment size = %d, want reserved %d", got, segBytes)
	}
	// Force rotations: each sealed segment must be trimmed back to its
	// valid bytes, only the active one keeps the reservation.
	appendAll2 := func(from, to int) {
		for i := from; i <= to; i++ {
			if _, err := l.Append(uint64(i), []byte(fmt.Sprintf("record-%03d payload", i))); err != nil {
				t.Fatalf("Append(%d): %v", i, err)
			}
		}
	}
	appendAll2(2, 12)
	paths = segPaths()
	if len(paths) < 2 {
		t.Fatalf("expected rotation, segments = %v", paths)
	}
	valid := make(map[string]int64)
	for _, s := range l.segs {
		valid[s.path] = s.size
	}
	for i, p := range paths {
		got := sizeOf(p)
		if i == len(paths)-1 {
			if got != segBytes {
				t.Fatalf("active segment %s size = %d, want reserved %d", p, got, segBytes)
			}
			continue
		}
		if want := valid[p]; got != want {
			t.Fatalf("sealed segment %s size = %d, want trimmed %d", p, got, want)
		}
	}
	// Clean close trims the active segment too.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	paths = segPaths()
	last := paths[len(paths)-1]
	if got, want := sizeOf(last), valid[last]; got != want {
		t.Fatalf("closed active segment size = %d, want trimmed %d", got, want)
	}
	// Reopen (as after a crash mid-reservation: simulate by re-extending
	// the final segment) and verify every record replays and appends
	// resume.
	if err := os.Truncate(last, segBytes); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: segBytes, Preallocate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := replayAll(t, l2, 0)
	if len(recs) != 12 || recs[0].Seq != 1 || recs[11].Seq != 12 {
		t.Fatalf("replay after reopen = %d records, want 12 (1..12)", len(recs))
	}
	if _, err := l2.Append(13, []byte("resumed")); err != nil {
		t.Fatal(err)
	}
}

// TestAppendNoSync checks the split append/fsync API the sharded
// durable commit path uses: records stay volatile (and the policy
// reports due) until the caller's own Sync, which then covers the
// whole window.
func TestAppendNoSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	due, err := l.AppendNoSync(1, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if due {
		t.Fatal("policy due after 1 append with SyncEvery=2")
	}
	due, err = l.AppendNoSync(2, []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if !due {
		t.Fatal("policy not due after 2 appends with SyncEvery=2")
	}
	// AppendNoSync never synced: the window is still open.
	if l.unsynced != 2 {
		t.Fatalf("unsynced = %d, want 2", l.unsynced)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.unsynced != 0 {
		t.Fatalf("unsynced after Sync = %d, want 0", l.unsynced)
	}
	recs := replayAll(t, l, 0)
	if len(recs) != 2 {
		t.Fatalf("replay = %d records, want 2", len(recs))
	}
}
