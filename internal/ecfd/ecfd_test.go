package ecfd_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfd"
	"repro/internal/ecfd"
	"repro/internal/paperdata"
	"repro/internal/relation"
)

// nySchema models the Section 2.3 New York example: customers with a city
// (CT) and area code (AC).
func nySchema() *relation.Schema {
	return relation.MustSchema("nycust",
		relation.Attr("CT", relation.KindString),
		relation.Attr("AC", relation.KindInt),
	)
}

// ecfd1: CT ∉ {NYC, LI} → AC — the FD CT → AC holds outside NYC and LI.
func ecfd1(s *relation.Schema) *ecfd.ECFD {
	return ecfd.MustNew(s, []string{"CT"}, []string{"AC"},
		ecfd.Row{
			LHS: []ecfd.Cell{ecfd.NotIn(relation.Str("NYC"), relation.Str("LI"))},
			RHS: []ecfd.Cell{ecfd.Any()},
		})
}

// ecfd2: CT ∈ {NYC} → AC ∈ {212, 718, 646, 347, 917}.
func ecfd2(s *relation.Schema) *ecfd.ECFD {
	return ecfd.MustNew(s, []string{"CT"}, []string{"AC"},
		ecfd.Row{
			LHS: []ecfd.Cell{ecfd.In(relation.Str("NYC"))},
			RHS: []ecfd.Cell{ecfd.In(
				relation.Int(212), relation.Int(718), relation.Int(646),
				relation.Int(347), relation.Int(917))},
		})
}

// TestECFDNewYorkExample reproduces the Section 2.3 eCFD example.
func TestECFDNewYorkExample(t *testing.T) {
	s := nySchema()
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("Albany"), relation.Int(518))
	in.MustInsert(relation.Str("NYC"), relation.Int(212))
	in.MustInsert(relation.Str("NYC"), relation.Int(718)) // two ACs in NYC: fine
	in.MustInsert(relation.Str("LI"), relation.Int(516))
	in.MustInsert(relation.Str("LI"), relation.Int(631)) // two ACs in LI: fine
	if !ecfd.SatisfiesAll(in, []*ecfd.ECFD{ecfd1(s), ecfd2(s)}) {
		t.Fatal("clean NY instance should satisfy ecfd1 and ecfd2")
	}

	// A second Albany area code breaks ecfd1 (CT ∉ {NYC,LI} → AC).
	dirty := in.Clone()
	dirty.MustInsert(relation.Str("Albany"), relation.Int(838))
	if ecfd.Satisfies(dirty, ecfd1(s)) {
		t.Error("two Albany area codes must violate ecfd1")
	}
	vs := ecfd.Detect(dirty, ecfd1(s))
	if len(vs) == 0 || vs[0].T1 == vs[0].T2 {
		t.Errorf("want a pair violation, got %v", vs)
	}

	// An NYC tuple with area code 555 breaks ecfd2.
	dirty2 := in.Clone()
	id := dirty2.MustInsert(relation.Str("NYC"), relation.Int(555))
	if ecfd.Satisfies(dirty2, ecfd2(s)) {
		t.Error("NYC with AC 555 must violate ecfd2")
	}
	found := false
	for _, v := range ecfd.Detect(dirty2, ecfd2(s)) {
		if v.T1 == id && v.T2 == id {
			found = true
			if s.Attr(v.Attr).Name != "AC" {
				t.Errorf("violation attr = %s", s.Attr(v.Attr).Name)
			}
		}
	}
	if !found {
		t.Errorf("single-tuple violation for TID %d not reported", id)
	}
	_ = vs[0].String()
}

// TestECFDEnforcesFiniteness demonstrates the Theorem 4.4 phenomenon: an
// "∈ S" cell confines an infinite-domain attribute to a finite value set,
// so case analysis over S yields consequences — and inconsistency —
// without any finite domain declared.
func TestECFDEnforcesFiniteness(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	a1, a2 := relation.Str("a1"), relation.Str("a2")
	// Every tuple must have A ∈ {a1, a2} ...
	confine := ecfd.MustNew(s, []string{"A"}, []string{"A"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.Any()}, RHS: []ecfd.Cell{ecfd.In(a1, a2)}})
	// ... but also A ∉ {a1} and A ∉ {a2}: inconsistent.
	no1 := ecfd.MustNew(s, []string{"A"}, []string{"A"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.Any()}, RHS: []ecfd.Cell{ecfd.NotIn(a1)}})
	no2 := ecfd.MustNew(s, []string{"A"}, []string{"A"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.Any()}, RHS: []ecfd.Cell{ecfd.NotIn(a2)}})
	if ok, _ := ecfd.Consistent([]*ecfd.ECFD{confine, no1, no2}); ok {
		t.Error("∈{a1,a2} with ∉{a1} and ∉{a2} must be inconsistent")
	}
	if ok, _ := ecfd.Consistent([]*ecfd.ECFD{confine, no1}); !ok {
		t.Error("∈{a1,a2} with ∉{a1} is consistent (A = a2)")
	}

	// Implication by case analysis over the ∈ set: A∈{a1,a2} everywhere,
	// A=a1 → B=z, A=a2 → B=z entail B=z unconditionally.
	z := relation.Str("z")
	r1 := ecfd.MustNew(s, []string{"A"}, []string{"B"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.Const(a1)}, RHS: []ecfd.Cell{ecfd.Const(z)}})
	r2 := ecfd.MustNew(s, []string{"A"}, []string{"B"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.Const(a2)}, RHS: []ecfd.Cell{ecfd.Const(z)}})
	target := ecfd.MustNew(s, []string{"A"}, []string{"B"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.Any()}, RHS: []ecfd.Cell{ecfd.Const(z)}})
	if !ecfd.Implies([]*ecfd.ECFD{confine, r1, r2}, target) {
		t.Error("case analysis over ∈{a1,a2} must yield B=z")
	}
	if ecfd.Implies([]*ecfd.ECFD{r1, r2}, target) {
		t.Error("without the confinement the implication must fail")
	}
}

// TestECFDAgreesWithCFD cross-checks the eCFD procedures against the cfd
// package on lifted CFDs: satisfaction, consistency and implication must
// coincide on the CFD fragment.
func TestECFDAgreesWithCFD(t *testing.T) {
	d0 := paperdata.Figure1()
	s := d0.Schema()
	for _, c := range []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s), paperdata.F1(s)} {
		if got, want := ecfd.Satisfies(d0, ecfd.FromCFD(c)), cfd.Satisfies(d0, c); got != want {
			t.Errorf("satisfaction differs on %v: ecfd=%v cfd=%v", c, got, want)
		}
	}
	// Example 4.1 inconsistency carries over.
	_, set41 := paperdata.Example41()
	lifted := []*ecfd.ECFD{ecfd.FromCFD(set41[0]), ecfd.FromCFD(set41[1])}
	if ok, _ := ecfd.Consistent(lifted); ok {
		t.Error("lifted Example 4.1 must stay inconsistent")
	}

	// Random cross-check of implication on the CFD fragment.
	rs := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
		relation.Attr("C", relation.KindString),
	)
	consts := []relation.Value{relation.Str("u"), relation.Str("v")}
	rng := rand.New(rand.NewSource(23))
	randCell := func() cfd.Cell {
		if rng.Intn(2) == 0 {
			return cfd.Any()
		}
		return cfd.Const(consts[rng.Intn(2)])
	}
	attrs := []string{"A", "B", "C"}
	randCFD := func() *cfd.CFD {
		var lhs []string
		for j, a := range attrs {
			if rng.Intn(2) == 0 || (j == 2 && len(lhs) == 0) {
				lhs = append(lhs, a)
			}
		}
		cells := make([]cfd.Cell, len(lhs))
		for j := range cells {
			cells[j] = randCell()
		}
		return cfd.MustNew(rs, lhs, []string{attrs[rng.Intn(3)]}, cfd.Row(cells, []cfd.Cell{randCell()}))
	}
	for trial := 0; trial < 60; trial++ {
		var base []*cfd.CFD
		var liftedSet []*ecfd.ECFD
		for i := 0; i < 1+rng.Intn(2); i++ {
			c := randCFD()
			base = append(base, c)
			liftedSet = append(liftedSet, ecfd.FromCFD(c))
		}
		phi := randCFD()
		if got, want := ecfd.Implies(liftedSet, ecfd.FromCFD(phi)), cfd.ImpliesExact(base, phi); got != want {
			t.Fatalf("trial %d: ecfd=%v cfd=%v\nΣ=%v\nϕ=%v", trial, got, want, base, phi)
		}
	}
}

func TestECFDCellSemantics(t *testing.T) {
	in := ecfd.In(relation.Int(1), relation.Int(2), relation.Int(1))
	if len(in.Set()) != 2 {
		t.Error("In should deduplicate")
	}
	if !in.Matches(relation.Int(2)) || in.Matches(relation.Int(3)) {
		t.Error("In membership wrong")
	}
	ni := ecfd.NotIn(relation.Str("x"))
	if ni.Matches(relation.Str("x")) || !ni.Matches(relation.Str("y")) {
		t.Error("NotIn membership wrong")
	}
	if !ecfd.Any().Matches(relation.Null()) {
		t.Error("Any must match everything")
	}
	if ecfd.Const(relation.Int(5)).String() != "5" {
		t.Errorf("singleton In renders as constant, got %q", ecfd.Const(relation.Int(5)))
	}
	if got := ecfd.In(relation.Int(2), relation.Int(1)).String(); got != "in{1,2}" {
		t.Errorf("In render = %q", got)
	}
	if got := ni.String(); got != "notin{x}" {
		t.Errorf("NotIn render = %q", got)
	}
}

func TestECFDValidation(t *testing.T) {
	s := nySchema()
	if _, err := ecfd.New(s, []string{"CT"}, nil); err == nil {
		t.Error("want empty-RHS error")
	}
	if _, err := ecfd.New(s, []string{"XX"}, []string{"AC"}); err == nil {
		t.Error("want unknown-attribute error")
	}
	if _, err := ecfd.New(s, []string{"CT"}, []string{"AC"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.Any(), ecfd.Any()}, RHS: []ecfd.Cell{ecfd.Any()}}); err == nil {
		t.Error("want arity error")
	}
	if _, err := ecfd.New(s, []string{"CT"}, []string{"AC"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.In()}, RHS: []ecfd.Cell{ecfd.Any()}}); err == nil {
		t.Error("want empty-∈-set error")
	}
	fs := relation.MustSchema("f", relation.FiniteAttr("A", relation.BoolDom()))
	if _, err := ecfd.New(fs, []string{"A"}, []string{"A"},
		ecfd.Row{LHS: []ecfd.Cell{ecfd.In(relation.Int(7))}, RHS: []ecfd.Cell{ecfd.Any()}}); err == nil {
		t.Error("want domain error")
	}
}

func TestECFDConsistencyWitness(t *testing.T) {
	s := nySchema()
	set := []*ecfd.ECFD{ecfd1(s), ecfd2(s)}
	ok, witness := ecfd.Consistent(set)
	if !ok {
		t.Fatal("NY eCFDs are consistent")
	}
	in := relation.NewInstance(s)
	if _, err := in.Insert(witness); err != nil {
		t.Fatal(err)
	}
	if !ecfd.SatisfiesAll(in, set) {
		t.Errorf("witness %v violates the set", witness)
	}
	if ok, _ := ecfd.Consistent(nil); !ok {
		t.Error("empty set consistent")
	}
}
