package ecfd_test

import (
	"strings"
	"testing"

	"repro/internal/ecfd"
	"repro/internal/relation"
)

func TestECFDParseNYExample(t *testing.T) {
	s := relation.MustSchema("nycust",
		relation.Attr("CT", relation.KindString),
		relation.Attr("AC", relation.KindInt),
	)
	schemas := map[string]*relation.Schema{"nycust": s}
	text := `
# Section 2.3 of the paper
ecfd nycust: [CT] -> [AC]
  notin{NYC,LI} || _

ecfd nycust: [CT] -> [AC]
  in{NYC} || in{212,718,646,347,917}
`
	set, err := ecfd.ParseString(text, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("parsed %d eCFDs, want 2", len(set))
	}
	in := relation.NewInstance(s)
	in.MustInsert(relation.Str("Albany"), relation.Int(518))
	in.MustInsert(relation.Str("NYC"), relation.Int(212))
	if !ecfd.SatisfiesAll(in, set) {
		t.Error("clean data should satisfy the parsed rules")
	}
	in.MustInsert(relation.Str("NYC"), relation.Int(555))
	if ecfd.Satisfies(in, set[1]) {
		t.Error("NYC/555 must violate the parsed ecfd2")
	}

	// Round trip.
	var sb strings.Builder
	if err := ecfd.Format(&sb, set); err != nil {
		t.Fatal(err)
	}
	again, err := ecfd.ParseString(sb.String(), schemas)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if len(again) != 2 || again[0].String() != set[0].String() || again[1].String() != set[1].String() {
		t.Errorf("round trip mismatch:\n%v\n%v", set, again)
	}
}

func TestECFDParseBareConstant(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindInt),
	)
	schemas := map[string]*relation.Schema{"r": s}
	set, err := ecfd.ParseString("ecfd r: [A] -> [B]\n  x || 7\n", schemas)
	if err != nil {
		t.Fatal(err)
	}
	row := set[0].Tableau()[0]
	if row.LHS[0].Op() != ecfd.OpIn || len(row.LHS[0].Set()) != 1 {
		t.Errorf("bare constant should parse as singleton In: %v", row.LHS[0])
	}
	if !row.RHS[0].Matches(relation.Int(7)) || row.RHS[0].Matches(relation.Int(8)) {
		t.Error("int constant cell wrong")
	}
}

func TestECFDParseErrors(t *testing.T) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindInt),
	)
	schemas := map[string]*relation.Schema{"r": s}
	bad := []string{
		"ecfd ghost: [A] -> [B]\n",
		"ecfd r [A] -> [B]\n",
		"ecfd r: [A] [B]\n",
		"ecfd r: [] -> [B]\n",
		"  x || 7\n",
		"ecfd r: [A] -> [B]\n  x\n",
		"ecfd r: [A] -> [B]\n  x, y || 7\n",
		"ecfd r: [A] -> [B]\n  x || notanint\n",
		"ecfd r: [A] -> [B]\n  in{a,b} || in{7,notanint}\n",
		"ecfd r: [A] -> [B]\n",
	}
	for _, text := range bad {
		if _, err := ecfd.ParseString(text, schemas); err == nil {
			t.Errorf("want parse error for %q", text)
		}
	}
}
