// Package ecfd implements extended conditional functional dependencies
// (eCFDs) from Section 2.3 of Fan (PODS 2008), following Bravo, Fan,
// Geerts and Ma (ICDE 2008): pattern cells generalize from constants and
// '_' to membership constraints "∈ S" (disjunction) and "∉ S"
// (inequality). The paper's examples:
//
//	ecfd1: CT ∉ {NYC, LI} → AC        (the FD CT → AC holds off NYC/LI)
//	ecfd2: CT ∈ {NYC} → AC ∈ {212, 718, 646, 347, 917}
//
// Satisfaction: for every pattern row tp and tuples t1, t2 with
// t1[X] = t2[X] matching tp[X], each RHS attribute B must satisfy
//
//   - t1[B] = t2[B] when tp[B] is '_' (the functional requirement), and
//   - t1[B], t2[B] match tp[B] when tp[B] is a set cell (membership only).
//
// Set-valued RHS cells deliberately do not impose equality: the paper's
// ecfd2 constrains NYC area codes to a five-element set while NYC
// legitimately has several area codes (that is exactly why ecfd1 excludes
// NYC from the FD). Singleton "∈ {c}" cells force both tuples to equal c,
// so the CFD fragment keeps its original semantics. Theorem 4.4:
// consistency and implication stay NP-complete and coNP-complete — and
// remain so even without finite-domain attributes, because "∈ S" cells
// force finite behaviour by themselves.
package ecfd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfd"
	"repro/internal/relation"
)

// CellOp distinguishes the three eCFD pattern cell forms.
type CellOp uint8

// The cell operators.
const (
	OpAny   CellOp = iota // '_': matches every value
	OpIn                  // ∈ S
	OpNotIn               // ∉ S
)

// Cell is one eCFD pattern entry.
type Cell struct {
	op  CellOp
	set []relation.Value
}

// Any returns the wildcard cell.
func Any() Cell { return Cell{op: OpAny} }

// In returns the cell "∈ {values...}".
func In(values ...relation.Value) Cell {
	return Cell{op: OpIn, set: dedup(values)}
}

// NotIn returns the cell "∉ {values...}".
func NotIn(values ...relation.Value) Cell {
	return Cell{op: OpNotIn, set: dedup(values)}
}

// Const returns the CFD-style constant cell, i.e. In(v).
func Const(v relation.Value) Cell { return In(v) }

func dedup(values []relation.Value) []relation.Value {
	seen := make(map[string]bool, len(values))
	out := make([]relation.Value, 0, len(values))
	for _, v := range values {
		if k := v.Key(); !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// Op returns the cell operator.
func (c Cell) Op() CellOp { return c.op }

// Set returns the cell's value set (nil for '_'). Not to be modified.
func (c Cell) Set() []relation.Value { return c.set }

// Matches reports whether value v satisfies the cell constraint.
func (c Cell) Matches(v relation.Value) bool {
	switch c.op {
	case OpAny:
		return true
	case OpIn:
		return contains(c.set, v)
	default:
		return !contains(c.set, v)
	}
}

func contains(set []relation.Value, v relation.Value) bool {
	for _, w := range set {
		if w.Equal(v) {
			return true
		}
	}
	return false
}

// String renders the cell.
func (c Cell) String() string {
	switch c.op {
	case OpAny:
		return "_"
	case OpIn:
		if len(c.set) == 1 {
			return c.set[0].String()
		}
		return "in" + setString(c.set)
	default:
		return "notin" + setString(c.set)
	}
}

func setString(set []relation.Value) string {
	parts := make([]string, len(set))
	for i, v := range set {
		parts[i] = v.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// Row is one eCFD pattern row.
type Row struct {
	LHS []Cell
	RHS []Cell
}

// ECFD is an extended CFD R(X → Y, Tp) with generalized pattern cells.
type ECFD struct {
	schema  *relation.Schema
	lhs     []int
	rhs     []int
	tableau []Row
}

// New builds an eCFD; validation mirrors cfd.New.
func New(schema *relation.Schema, lhs, rhs []string, rows ...Row) (*ECFD, error) {
	if len(rhs) == 0 {
		return nil, fmt.Errorf("ecfd: %s: empty RHS", schema.Name())
	}
	lp, err := schema.Positions(lhs)
	if err != nil {
		return nil, fmt.Errorf("ecfd: %v", err)
	}
	rp, err := schema.Positions(rhs)
	if err != nil {
		return nil, fmt.Errorf("ecfd: %v", err)
	}
	e := &ECFD{schema: schema, lhs: lp, rhs: rp}
	for i, r := range rows {
		if len(r.LHS) != len(lp) || len(r.RHS) != len(rp) {
			return nil, fmt.Errorf("ecfd: %s row %d: pattern arity mismatch", schema.Name(), i)
		}
		check := func(cells []Cell, pos []int) error {
			for j, cell := range cells {
				for _, v := range cell.set {
					if !schema.Attr(pos[j]).Domain.Contains(v) {
						return fmt.Errorf("ecfd: %s row %d: %v not in dom(%s)", schema.Name(), i, v, schema.Attr(pos[j]).Name)
					}
				}
				if cell.op == OpIn && len(cell.set) == 0 {
					return fmt.Errorf("ecfd: %s row %d: empty ∈ set", schema.Name(), i)
				}
			}
			return nil
		}
		if err := check(r.LHS, lp); err != nil {
			return nil, err
		}
		if err := check(r.RHS, rp); err != nil {
			return nil, err
		}
		e.tableau = append(e.tableau, Row{
			LHS: append([]Cell(nil), r.LHS...),
			RHS: append([]Cell(nil), r.RHS...),
		})
	}
	return e, nil
}

// MustNew is New that panics on error.
func MustNew(schema *relation.Schema, lhs, rhs []string, rows ...Row) *ECFD {
	e, err := New(schema, lhs, rhs, rows...)
	if err != nil {
		panic(err)
	}
	return e
}

// FromCFD lifts a CFD into the eCFD language (constants become singleton
// ∈ sets). Every CFD is an eCFD.
func FromCFD(c *cfd.CFD) *ECFD {
	lift := func(cells []cfd.Cell) []Cell {
		out := make([]Cell, len(cells))
		for i, cl := range cells {
			if cl.IsWildcard() {
				out[i] = Any()
			} else {
				out[i] = Const(cl.Value())
			}
		}
		return out
	}
	e := &ECFD{
		schema: c.Schema(),
		lhs:    append([]int(nil), c.LHS()...),
		rhs:    append([]int(nil), c.RHS()...),
	}
	for _, r := range c.Tableau() {
		e.tableau = append(e.tableau, Row{LHS: lift(r.LHS), RHS: lift(r.RHS)})
	}
	return e
}

// Schema returns the schema the eCFD is defined on.
func (e *ECFD) Schema() *relation.Schema { return e.schema }

// LHS returns the X attribute positions.
func (e *ECFD) LHS() []int { return e.lhs }

// RHS returns the Y attribute positions.
func (e *ECFD) RHS() []int { return e.rhs }

// Tableau returns the pattern rows (not to be modified).
func (e *ECFD) Tableau() []Row { return e.tableau }

// String renders the eCFD.
func (e *ECFD) String() string {
	names := func(pos []int) string {
		parts := make([]string, len(pos))
		for i, p := range pos {
			parts[i] = e.schema.Attr(p).Name
		}
		return strings.Join(parts, ", ")
	}
	rows := make([]string, len(e.tableau))
	for i, r := range e.tableau {
		l := make([]string, len(r.LHS))
		for j, c := range r.LHS {
			l[j] = c.String()
		}
		rr := make([]string, len(r.RHS))
		for j, c := range r.RHS {
			rr[j] = c.String()
		}
		rows[i] = strings.Join(l, ", ") + " || " + strings.Join(rr, ", ")
	}
	return fmt.Sprintf("%s([%s] -> [%s], {%s})", e.schema.Name(), names(e.lhs), names(e.rhs), strings.Join(rows, "; "))
}

// Satisfies reports D ⊨ e.
func Satisfies(in *relation.Instance, e *ECFD) bool {
	return len(detect(in, e, true)) == 0
}

// SatisfiesAll reports D ⊨ Σ.
func SatisfiesAll(in *relation.Instance, set []*ECFD) bool {
	for _, e := range set {
		if !Satisfies(in, e) {
			return false
		}
	}
	return true
}

// Violation records one detected eCFD violation (TuplePair when T1 ≠ T2).
type Violation struct {
	ECFD *ECFD
	Row  int
	T1   relation.TID
	T2   relation.TID
	Attr int
}

// String renders the violation.
func (v Violation) String() string {
	attr := v.ECFD.schema.Attr(v.Attr).Name
	if v.T1 == v.T2 {
		return fmt.Sprintf("%s: tuple %d violates row %d on %s", v.ECFD.schema.Name(), v.T1, v.Row, attr)
	}
	return fmt.Sprintf("%s: tuples %d,%d violate row %d on %s", v.ECFD.schema.Name(), v.T1, v.T2, v.Row, attr)
}

// Detect returns the violations of e in the instance, sorted by
// (Row, T1, T2, Attr) — relation.Index.Groups iterates buckets in map
// order, so detection would otherwise be nondeterministic.
func Detect(in *relation.Instance, e *ECFD) []Violation {
	return detect(in, e, false)
}

// DetectAll combines Detect over a set in the canonical reporting order
// (see SortViolations).
func DetectAll(in *relation.Instance, set []*ECFD) []Violation {
	var out []Violation
	for _, e := range set {
		out = append(out, Detect(in, e)...)
	}
	SortViolations(out)
	return out
}

// SortViolations sorts a combined violation slice into the canonical
// reporting order: (T1, T2, Attr, Row), stably, so violations of
// distinct eCFDs that tie on all four keys keep the Σ order they were
// gathered in — the comparator of cfd.SortViolations, and the one the
// detection engine merges mixed batches with.
func SortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].T1 != vs[j].T1 {
			return vs[i].T1 < vs[j].T1
		}
		if vs[i].T2 != vs[j].T2 {
			return vs[i].T2 < vs[j].T2
		}
		if vs[i].Attr != vs[j].Attr {
			return vs[i].Attr < vs[j].Attr
		}
		return vs[i].Row < vs[j].Row
	})
}

// sortDetectOrder sorts one eCFD's violations into the canonical
// per-constraint order (Row, T1, T2, Attr), mirroring cfd's detectors.
func sortDetectOrder(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Row != vs[j].Row {
			return vs[i].Row < vs[j].Row
		}
		if vs[i].T1 != vs[j].T1 {
			return vs[i].T1 < vs[j].T1
		}
		if vs[i].T2 != vs[j].T2 {
			return vs[i].T2 < vs[j].T2
		}
		return vs[i].Attr < vs[j].Attr
	})
}

func detect(in *relation.Instance, e *ECFD, firstOnly bool) []Violation {
	var out []Violation
	ids := in.IDs()
	ix := relation.BuildIndex(in, e.lhs)
	for rowIdx, row := range e.tableau {
		matchLHS := func(t relation.Tuple) bool {
			for j, p := range e.lhs {
				if !row.LHS[j].Matches(t[p]) {
					return false
				}
			}
			return true
		}
		// Single-tuple violations against non-wildcard RHS cells.
		hasRHSCond := false
		for _, c := range row.RHS {
			if c.op != OpAny {
				hasRHSCond = true
				break
			}
		}
		if hasRHSCond {
			for _, id := range ids {
				t, _ := in.Tuple(id)
				if !matchLHS(t) {
					continue
				}
				for j, p := range e.rhs {
					if !row.RHS[j].Matches(t[p]) {
						out = append(out, Violation{ECFD: e, Row: rowIdx, T1: id, T2: id, Attr: p})
						if firstOnly {
							return out
						}
					}
				}
			}
		}
		// Pair violations within LHS-equal groups matching the pattern:
		// the functional requirement applies to wildcard RHS cells only.
		var eqPos []int
		for j, p := range e.rhs {
			if row.RHS[j].op == OpAny {
				eqPos = append(eqPos, p)
			}
		}
		if len(eqPos) == 0 {
			continue
		}
		stop := false
		ix.Groups(2, func(_ string, gids []relation.TID) {
			if stop {
				return
			}
			rep, _ := in.Tuple(gids[0])
			if !matchLHS(rep) {
				return
			}
			for _, id := range gids[1:] {
				t, _ := in.Tuple(id)
				for _, p := range eqPos {
					if !t[p].Equal(rep[p]) {
						out = append(out, Violation{ECFD: e, Row: rowIdx, T1: gids[0], T2: id, Attr: p})
						if firstOnly {
							stop = true
							return
						}
					}
				}
			}
		})
		if firstOnly && len(out) > 0 {
			return out
		}
	}
	sortDetectOrder(out)
	return out
}
