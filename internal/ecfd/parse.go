package ecfd

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/relation"
)

// Text format for eCFDs, extending the cfd format with set cells:
//
//	ecfd nycust: [CT] -> [AC]
//	  notin{NYC,LI} || _
//	  in{NYC} || in{212,718,646,347,917}
//
// Cells are '_', a bare constant (singleton ∈ set), in{v1,v2,...} or
// notin{v1,v2,...}. Blank lines and '#' comments are ignored.

// Parse reads eCFDs in the text format; schemas are resolved by relation
// name.
func Parse(r io.Reader, schemas map[string]*relation.Schema) ([]*ECFD, error) {
	sc := bufio.NewScanner(r)
	var out []*ECFD
	var cur *ECFD
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.HasPrefix(text, "ecfd ") {
			e, err := parseHeader(text[5:], schemas)
			if err != nil {
				return nil, fmt.Errorf("ecfd: line %d: %v", line, err)
			}
			out = append(out, e)
			cur = e
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("ecfd: line %d: pattern row before any 'ecfd' header", line)
		}
		row, err := parseRow(text, cur)
		if err != nil {
			return nil, fmt.Errorf("ecfd: line %d: %v", line, err)
		}
		ne, err := New(cur.schema, names(cur.schema, cur.lhs), names(cur.schema, cur.rhs), append(cur.tableau, row)...)
		if err != nil {
			return nil, fmt.Errorf("ecfd: line %d: %v", line, err)
		}
		*cur = *ne
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range out {
		if len(e.tableau) == 0 {
			return nil, fmt.Errorf("ecfd: %s has an empty tableau", e)
		}
	}
	return out, nil
}

// ParseString is Parse over a string.
func ParseString(s string, schemas map[string]*relation.Schema) ([]*ECFD, error) {
	return Parse(strings.NewReader(s), schemas)
}

func names(s *relation.Schema, pos []int) []string {
	out := make([]string, len(pos))
	for i, p := range pos {
		out[i] = s.Attr(p).Name
	}
	return out
}

func parseHeader(s string, schemas map[string]*relation.Schema) (*ECFD, error) {
	relName, rest, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("header %q: want '<relation>: [X] -> [Y]'", s)
	}
	schema, ok := schemas[strings.TrimSpace(relName)]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", strings.TrimSpace(relName))
	}
	lhsPart, rhsPart, ok := strings.Cut(rest, "->")
	if !ok {
		return nil, fmt.Errorf("header %q: missing '->'", s)
	}
	lhs, err := parseAttrList(lhsPart)
	if err != nil {
		return nil, err
	}
	rhs, err := parseAttrList(rhsPart)
	if err != nil {
		return nil, err
	}
	return New(schema, lhs, rhs)
}

func parseAttrList(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("attribute list %q: want [A, B, ...]", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, fmt.Errorf("empty attribute list")
	}
	parts := strings.Split(inner, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
		if out[i] == "" {
			return nil, fmt.Errorf("empty attribute in %q", s)
		}
	}
	return out, nil
}

func parseRow(s string, e *ECFD) (Row, error) {
	lhsPart, rhsPart, ok := strings.Cut(s, "||")
	if !ok {
		return Row{}, fmt.Errorf("pattern row %q: missing '||'", s)
	}
	lhs, err := parseCells(lhsPart, e.schema, e.lhs)
	if err != nil {
		return Row{}, err
	}
	rhs, err := parseCells(rhsPart, e.schema, e.rhs)
	if err != nil {
		return Row{}, err
	}
	return Row{LHS: lhs, RHS: rhs}, nil
}

// splitTop splits on commas not inside braces.
func splitTop(s string) []string {
	var out []string
	depth := 0
	var cur strings.Builder
	for _, r := range s {
		switch {
		case r == '{':
			depth++
			cur.WriteRune(r)
		case r == '}':
			depth--
			cur.WriteRune(r)
		case r == ',' && depth == 0:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	out = append(out, cur.String())
	return out
}

func parseCells(s string, schema *relation.Schema, pos []int) ([]Cell, error) {
	raw := splitTop(s)
	if len(raw) != len(pos) {
		return nil, fmt.Errorf("pattern %q: %d cells, want %d", strings.TrimSpace(s), len(raw), len(pos))
	}
	out := make([]Cell, len(raw))
	for i, cellText := range raw {
		cellText = strings.TrimSpace(cellText)
		kind := schema.Attr(pos[i]).Domain.Kind()
		cell, err := parseCell(cellText, kind)
		if err != nil {
			return nil, fmt.Errorf("cell %q for %s: %v", cellText, schema.Attr(pos[i]).Name, err)
		}
		out[i] = cell
	}
	return out, nil
}

func parseCell(s string, kind relation.Kind) (Cell, error) {
	switch {
	case s == "_":
		return Any(), nil
	case strings.HasPrefix(s, "in{") && strings.HasSuffix(s, "}"):
		vals, err := parseSet(s[3:len(s)-1], kind)
		if err != nil {
			return Cell{}, err
		}
		return In(vals...), nil
	case strings.HasPrefix(s, "notin{") && strings.HasSuffix(s, "}"):
		vals, err := parseSet(s[6:len(s)-1], kind)
		if err != nil {
			return Cell{}, err
		}
		return NotIn(vals...), nil
	default:
		v, err := relation.ParseValue(kind, s)
		if err != nil {
			return Cell{}, err
		}
		return Const(v), nil
	}
}

func parseSet(inner string, kind relation.Kind) ([]relation.Value, error) {
	parts := strings.Split(inner, ",")
	out := make([]relation.Value, 0, len(parts))
	for _, p := range parts {
		v, err := relation.ParseValue(kind, strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Format renders an eCFD set in the Parse text format.
func Format(w io.Writer, set []*ECFD) error {
	for _, e := range set {
		if _, err := fmt.Fprintf(w, "ecfd %s: [%s] -> [%s]\n",
			e.schema.Name(),
			strings.Join(names(e.schema, e.lhs), ", "),
			strings.Join(names(e.schema, e.rhs), ", ")); err != nil {
			return err
		}
		for _, row := range e.tableau {
			l := make([]string, len(row.LHS))
			for i, c := range row.LHS {
				l[i] = formatCell(c)
			}
			r := make([]string, len(row.RHS))
			for i, c := range row.RHS {
				r[i] = formatCell(c)
			}
			if _, err := fmt.Fprintf(w, "  %s || %s\n", strings.Join(l, ", "), strings.Join(r, ", ")); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatCell(c Cell) string {
	switch c.op {
	case OpAny:
		return "_"
	case OpIn:
		return "in" + plainSet(c.set)
	default:
		return "notin" + plainSet(c.set)
	}
}

func plainSet(vs []relation.Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}
