package ecfd

import (
	"sort"

	"repro/internal/relation"
)

// Static analyses for eCFDs (Theorem 4.4: consistency NP-complete,
// implication coNP-complete, with or without finite-domain attributes).
// Both use the same ≤2-tuple characterizations as CFDs — eCFD satisfaction
// is still universally quantified over tuple pairs, hence closed under
// subsets — with candidate sets that include one (consistency) or two
// (implication) fresh values outside every mentioned set, which is
// complete because cells only test membership in finite constant sets.

// normalized single-RHS row view.
type nrow struct {
	lhsPos []int
	lhs    []Cell
	rhsPos int
	rhs    Cell
}

func normalize(set []*ECFD) ([]nrow, *relation.Schema) {
	var rows []nrow
	var schema *relation.Schema
	for _, e := range set {
		if schema == nil {
			schema = e.schema
		}
		for _, r := range e.tableau {
			for j, rp := range e.rhs {
				rows = append(rows, nrow{lhsPos: e.lhs, lhs: r.LHS, rhsPos: rp, rhs: r.RHS[j]})
			}
		}
	}
	return rows, schema
}

func involved(rows []nrow) []int {
	seen := make(map[int]bool)
	for _, r := range rows {
		for _, p := range r.lhsPos {
			seen[p] = true
		}
		seen[r.rhsPos] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func constsAt(rows []nrow) map[int][]relation.Value {
	out := make(map[int][]relation.Value)
	add := func(pos int, vs []relation.Value) {
	loop:
		for _, v := range vs {
			for _, w := range out[pos] {
				if w.Equal(v) {
					continue loop
				}
			}
			out[pos] = append(out[pos], v)
		}
	}
	for _, r := range rows {
		for j, cell := range r.lhs {
			add(r.lhsPos[j], cell.set)
		}
		add(r.rhsPos, r.rhs.set)
	}
	return out
}

func finite(a relation.Attribute) bool {
	return a.Domain.Finite() || a.Domain.Kind() == relation.KindBool
}

func domainValues(a relation.Attribute) []relation.Value {
	if a.Domain.Finite() {
		return a.Domain.Values()
	}
	return []relation.Value{relation.Bool(false), relation.Bool(true)}
}

// freshOutside returns n values of the attribute's kind distinct from used.
func freshOutside(a relation.Attribute, used []relation.Value, n int) []relation.Value {
	out := make([]relation.Value, 0, n)
	switch a.Domain.Kind() {
	case relation.KindInt:
		var max int64
		for _, v := range used {
			if v.FloatVal() > float64(max) {
				max = int64(v.FloatVal()) + 1
			}
		}
		for i := int64(1); len(out) < n; i++ {
			out = append(out, relation.Int(max+i))
		}
	case relation.KindFloat:
		var max float64
		for _, v := range used {
			if v.FloatVal() > max {
				max = v.FloatVal()
			}
		}
		for i := 1; len(out) < n; i++ {
			out = append(out, relation.Float(max+float64(i)+0.25))
		}
	default:
		taken := make(map[string]bool)
		for _, v := range used {
			taken[v.StrVal()] = true
		}
		for i := 0; len(out) < n; i++ {
			s := "\x02efresh" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			if !taken[s] {
				out = append(out, relation.Str(s))
			}
		}
	}
	return out
}

func candidates(a relation.Attribute, consts []relation.Value, extra int) []relation.Value {
	if finite(a) {
		return domainValues(a)
	}
	return append(append([]relation.Value(nil), consts...), freshOutside(a, consts, extra)...)
}

// Consistent decides whether the eCFD set admits a nonempty instance, via
// exact search over the single-tuple characterization. The second result
// is a witness tuple when consistent.
func Consistent(set []*ECFD) (bool, relation.Tuple) {
	rows, schema := normalize(set)
	if len(rows) == 0 {
		return true, nil
	}
	pos := involved(rows)
	consts := constsAt(rows)
	cands := make([][]relation.Value, len(pos))
	for i, p := range pos {
		cands[i] = candidates(schema.Attr(p), consts[p], 1)
	}
	assign := make(map[int]relation.Value, len(pos))
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == len(pos) {
			return true
		}
		p := pos[i]
		for _, v := range cands[i] {
			assign[p] = v
			if partialOK(rows, assign) && dfs(i+1) {
				return true
			}
		}
		delete(assign, p)
		return false
	}
	if !dfs(0) {
		return false, nil
	}
	t := make(relation.Tuple, schema.Arity())
	for p := 0; p < schema.Arity(); p++ {
		if v, ok := assign[p]; ok {
			t[p] = v
			continue
		}
		a := schema.Attr(p)
		if finite(a) {
			t[p] = domainValues(a)[0]
		} else {
			t[p] = freshOutside(a, nil, 1)[0]
		}
	}
	return true, t
}

// partialOK prunes assignments that already violate some row on the
// single-tuple semantics.
func partialOK(rows []nrow, assign map[int]relation.Value) bool {
	for _, r := range rows {
		lhsMatched := true
		for j, cell := range r.lhs {
			if cell.op == OpAny {
				continue
			}
			v, ok := assign[r.lhsPos[j]]
			if !ok || !cell.Matches(v) {
				lhsMatched = false
				break
			}
		}
		if !lhsMatched || r.rhs.op == OpAny {
			continue
		}
		if v, ok := assign[r.rhsPos]; ok && !r.rhs.Matches(v) {
			return false
		}
	}
	return true
}

// Implies decides Σ ⊨ e by exhaustive ≤2-tuple counterexample search
// (coNP upper bound of Theorem 4.4).
func Implies(set []*ECFD, phi *ECFD) bool {
	sigma, schema := normalize(set)
	targets, tSchema := normalize([]*ECFD{phi})
	if schema == nil {
		schema = tSchema
	}
	for _, target := range targets {
		if !impliesNormal(sigma, schema, target) {
			return false
		}
	}
	return true
}

func impliesNormal(sigma []nrow, schema *relation.Schema, target nrow) bool {
	rows := append(append([]nrow(nil), sigma...), target)
	pos := involved(rows)
	consts := constsAt(rows)
	posIdx := make(map[int]int, len(pos))
	cands := make([][]relation.Value, len(pos))
	for i, p := range pos {
		posIdx[p] = i
		cands[i] = candidates(schema.Attr(p), consts[p], 2)
	}
	inX := make(map[int]bool)
	cellOnX := make(map[int]Cell)
	for j, p := range target.lhsPos {
		inX[p] = true
		cellOnX[p] = target.lhs[j]
	}
	var xIdx, restIdx []int
	for i, p := range pos {
		if inX[p] {
			xIdx = append(xIdx, i)
		} else {
			restIdx = append(restIdx, i)
		}
	}
	t1 := make([]relation.Value, len(pos))
	t2 := make([]relation.Value, len(pos))
	counterexample := false

	get := func(t []relation.Value, p int) relation.Value { return t[posIdx[p]] }
	// conclusion applies the eCFD RHS semantics: '_' demands equality,
	// set cells demand membership of both values.
	conclusion := func(ta, tb []relation.Value, rhsPos int, rhs Cell) bool {
		va, vb := get(ta, rhsPos), get(tb, rhsPos)
		if rhs.op == OpAny {
			return va.Equal(vb)
		}
		return rhs.Matches(va) && rhs.Matches(vb)
	}
	pairOK := func(ta, tb []relation.Value, r nrow) bool {
		for j, cell := range r.lhs {
			p := r.lhsPos[j]
			va, vb := get(ta, p), get(tb, p)
			if !va.Equal(vb) || !cell.Matches(va) {
				return true
			}
		}
		return conclusion(ta, tb, r.rhsPos, r.rhs)
	}
	check := func() {
		for _, r := range sigma {
			if !pairOK(t1, t1, r) || !pairOK(t2, t2, r) || !pairOK(t1, t2, r) {
				return
			}
		}
		if conclusion(t1, t2, target.rhsPos, target.rhs) {
			return
		}
		counterexample = true
	}
	var dfs func(stage, k int)
	dfs = func(stage, k int) {
		if counterexample {
			return
		}
		switch stage {
		case 0: // joint X assignment, must match the target pattern
			if k == len(xIdx) {
				dfs(1, 0)
				return
			}
			i := xIdx[k]
			for _, v := range cands[i] {
				if !cellOnX[pos[i]].Matches(v) {
					continue
				}
				t1[i], t2[i] = v, v
				dfs(0, k+1)
				if counterexample {
					return
				}
			}
		case 1: // t1 rest
			if k == len(restIdx) {
				dfs(2, 0)
				return
			}
			i := restIdx[k]
			for _, v := range cands[i] {
				t1[i] = v
				dfs(1, k+1)
				if counterexample {
					return
				}
			}
		default: // t2 rest
			if k == len(restIdx) {
				check()
				return
			}
			i := restIdx[k]
			for _, v := range cands[i] {
				t2[i] = v
				dfs(2, k+1)
				if counterexample {
					return
				}
			}
		}
	}
	dfs(0, 0)
	return !counterexample
}
