package ecfd

import (
	"slices"

	"repro/internal/relation"
)

// Snapshot-backed eCFD violation detection: the columnar fast path of
// the detection engine, mirroring cfd's *WithSnapshot primitives — same
// violations, same (Row, T1, T2, Attr) order as the string-keyed
// detector.
//
// Set cells compile to dictionary code sets once per tableau row:
// membership of a data value in "∈ S" / "∉ S" becomes a scan of a
// handful of codes instead of Value.Equal calls per member (set members
// that never occur in the column — including NaN constants, which Equal
// nothing — are dropped at compile time, so an emptied ∈ set prunes all
// matching and an emptied ∉ set matches every tuple). LHS matching and
// the single-tuple RHS membership checks run entirely on hoisted code
// columns; the pair checks on wildcard RHS attributes compare frozen
// tuples with Value.Equal, exactly like cfd, since LHS groups are
// overwhelmingly small.

// codedSet is a pattern cell compiled against an attribute dictionary.
type codedSet struct {
	op    CellOp
	codes []uint32 // member codes present in the column (OpIn/OpNotIn)
}

// matches reports whether a cell accepts a data value's code.
func (cs codedSet) matches(code uint32) bool {
	switch cs.op {
	case OpAny:
		return true
	case OpIn:
		for _, c := range cs.codes {
			if c == code {
				return true
			}
		}
		return false
	default:
		for _, c := range cs.codes {
			if c == code {
				return false
			}
		}
		return true
	}
}

// compileSets compiles pattern cells against the dictionaries of their
// attribute positions. anyMatch reports whether some tuple could still
// match every cell: false as soon as an ∈ set loses all its members to
// dictionary misses (LHS rows compiled to !anyMatch are pruned whole).
func compileSets(snap *relation.Snapshot, pos []int, cells []Cell) (out []codedSet, anyMatch bool) {
	out = make([]codedSet, len(cells))
	anyMatch = true
	for j, cell := range cells {
		cs := codedSet{op: cell.op}
		for _, v := range cell.set {
			if v.Kind() == relation.KindFloat && v.FloatVal() != v.FloatVal() {
				continue // a NaN member Equals no data value
			}
			if code, ok := snap.Dict(pos[j]).Code(v); ok {
				cs.codes = append(cs.codes, code)
			}
		}
		if cell.op == OpIn && len(cs.codes) == 0 {
			anyMatch = false
		}
		out[j] = cs
	}
	return out, anyMatch
}

// SatisfiesWithSnapshot is Satisfies on the columnar path.
func SatisfiesWithSnapshot(snap *relation.Snapshot, e *ECFD, cx *relation.CodeIndex) bool {
	return len(detectSnap(snap, e, lhsCodeIndex(snap, e, cx), true)) == 0
}

// DetectWithSnapshot is Detect on the columnar path: all violations of
// the eCFD in the snapshotted instance, sorted by (Row, T1, T2, Attr),
// byte-identical to the string-keyed detector.
func DetectWithSnapshot(snap *relation.Snapshot, e *ECFD, cx *relation.CodeIndex) []Violation {
	return detectSnap(snap, e, lhsCodeIndex(snap, e, cx), false)
}

// lhsCodeIndex validates that cx is an index over snap on e's LHS
// positions, rebuilding it when it is not (or is nil).
func lhsCodeIndex(snap *relation.Snapshot, e *ECFD, cx *relation.CodeIndex) *relation.CodeIndex {
	if cx == nil || cx.Snapshot() != snap || !slices.Equal(cx.Positions(), e.lhs) {
		return relation.BuildCodeIndex(snap, e.lhs)
	}
	return cx
}

func detectSnap(snap *relation.Snapshot, e *ECFD, cx *relation.CodeIndex, firstOnly bool) []Violation {
	var out []Violation
	n := snap.Len()
	lhsCols := make([][]uint32, len(e.lhs))
	for j, p := range e.lhs {
		lhsCols[j] = snap.Col(p)
	}

	for rowIdx, row := range e.tableau {
		lhs, anyMatch := compileSets(snap, e.lhs, row.LHS)
		if !anyMatch {
			continue // some ∈ cell lost every member: no tuple matches
		}
		matchLHS := func(r int) bool {
			for j := range lhs {
				if !lhs[j].matches(lhsCols[j][r]) {
					return false
				}
			}
			return true
		}
		// Single-tuple violations against non-wildcard RHS cells.
		hasRHSCond := false
		for _, c := range row.RHS {
			if c.op != OpAny {
				hasRHSCond = true
				break
			}
		}
		if hasRHSCond {
			rhs, _ := compileSets(snap, e.rhs, row.RHS)
			rhsCols := make([][]uint32, len(e.rhs))
			for j, p := range e.rhs {
				rhsCols[j] = snap.Col(p)
			}
			for r := 0; r < n; r++ {
				if !matchLHS(r) {
					continue
				}
				for j, p := range e.rhs {
					if rhs[j].op != OpAny && !rhs[j].matches(rhsCols[j][r]) {
						id := snap.TID(r)
						out = append(out, Violation{ECFD: e, Row: rowIdx, T1: id, T2: id, Attr: p})
						if firstOnly {
							return out
						}
					}
				}
			}
		}
		// Pair violations within LHS-equal groups matching the pattern:
		// the functional requirement applies to wildcard RHS cells only.
		var eqPos []int
		for j, p := range e.rhs {
			if row.RHS[j].op == OpAny {
				eqPos = append(eqPos, p)
			}
		}
		if len(eqPos) == 0 {
			continue
		}
		cx.GroupsWhile(2, func(rows []int32) bool {
			rep := int(rows[0])
			if !matchLHS(rep) {
				return true // the whole group shares the LHS, so one check suffices
			}
			trep := snap.TupleAt(rep)
			repID := snap.TID(rep)
			for _, r := range rows[1:] {
				t := snap.TupleAt(int(r))
				for _, p := range eqPos {
					if !t[p].Equal(trep[p]) {
						out = append(out, Violation{ECFD: e, Row: rowIdx, T1: repID, T2: snap.TID(int(r)), Attr: p})
						if firstOnly {
							return false
						}
					}
				}
			}
			return true
		})
		if firstOnly && len(out) > 0 {
			return out
		}
	}
	sortDetectOrder(out)
	return out
}

// DetectTouchedWithSnapshot returns the violations of e whose witnesses
// involve at least one touched tuple, in (Row, T1, T2, Attr) order —
// the incremental entry point, mirroring cfd.DetectTouchedWithSnapshot:
// single-tuple checks run on the touched tuples only, pair checks on
// the LHS groups of the touched tuples (each group once, against its
// representative). Touched TIDs missing from the snapshot are skipped.
func DetectTouchedWithSnapshot(snap *relation.Snapshot, e *ECFD, cx *relation.CodeIndex, touched []relation.TID) []Violation {
	cx = lhsCodeIndex(snap, e, cx)
	var out []Violation
	lhsCols := make([][]uint32, len(e.lhs))
	for j, p := range e.lhs {
		lhsCols[j] = snap.Col(p)
	}

	for rowIdx, row := range e.tableau {
		lhs, anyMatch := compileSets(snap, e.lhs, row.LHS)
		if !anyMatch {
			continue
		}
		matchLHS := func(r int) bool {
			for j := range lhs {
				if !lhs[j].matches(lhsCols[j][r]) {
					return false
				}
			}
			return true
		}
		hasRHSCond := false
		for _, c := range row.RHS {
			if c.op != OpAny {
				hasRHSCond = true
				break
			}
		}
		if hasRHSCond {
			rhs, _ := compileSets(snap, e.rhs, row.RHS)
			rhsCols := make([][]uint32, len(e.rhs))
			for j, p := range e.rhs {
				rhsCols[j] = snap.Col(p)
			}
			for _, id := range touched {
				r, ok := snap.Row(id)
				if !ok || !matchLHS(r) {
					continue
				}
				for j, p := range e.rhs {
					if rhs[j].op != OpAny && !rhs[j].matches(rhsCols[j][r]) {
						out = append(out, Violation{ECFD: e, Row: rowIdx, T1: id, T2: id, Attr: p})
					}
				}
			}
		}
		var eqPos []int
		for j, p := range e.rhs {
			if row.RHS[j].op == OpAny {
				eqPos = append(eqPos, p)
			}
		}
		if len(eqPos) == 0 {
			continue
		}
		var seen map[int32]bool
		for _, id := range touched {
			r, ok := snap.Row(id)
			if !ok {
				continue
			}
			gi := cx.GroupOrdinal(r)
			if seen[gi] {
				continue
			}
			if seen == nil {
				seen = make(map[int32]bool, len(touched))
			}
			seen[gi] = true
			rows := cx.GroupOf(r)
			if len(rows) < 2 {
				continue
			}
			rep := int(rows[0])
			if !matchLHS(rep) {
				continue
			}
			trep := snap.TupleAt(rep)
			repID := snap.TID(rep)
			for _, gr := range rows[1:] {
				t := snap.TupleAt(int(gr))
				for _, p := range eqPos {
					if !t[p].Equal(trep[p]) {
						out = append(out, Violation{ECFD: e, Row: rowIdx, T1: repID, T2: snap.TID(int(gr)), Attr: p})
					}
				}
			}
		}
	}
	sortDetectOrder(out)
	return out
}
