package ecfd_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ecfd"
	"repro/internal/gen"
	"repro/internal/relation"
)

// benchSet builds a small mixed eCFD family over the customer schema:
// the paper's two shapes (an FD holding off a city set, a membership
// constraint on area codes for one city set) plus a row with both a
// constant-style singleton and a notin RHS cell.
func benchSet(s *relation.Schema) []*ecfd.ECFD {
	return []*ecfd.ECFD{
		ecfd.MustNew(s, []string{"city"}, []string{"zip"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.NotIn(relation.Str("NYC"), relation.Str("MH"))}, RHS: []ecfd.Cell{ecfd.Any()}}),
		ecfd.MustNew(s, []string{"city"}, []string{"AC"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.In(relation.Str("EDI"), relation.Str("GLA"))},
				RHS: []ecfd.Cell{ecfd.In(relation.Int(131), relation.Int(141))}}),
		ecfd.MustNew(s, []string{"CC", "AC"}, []string{"city", "street"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.Const(relation.Int(44)), ecfd.Any()},
				RHS: []ecfd.Cell{ecfd.NotIn(relation.Str("MH")), ecfd.Any()}}),
		// A row whose ∈ constant never occurs: prunes to nothing on both paths.
		ecfd.MustNew(s, []string{"city"}, []string{"street"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.In(relation.Str("NOWHERE"))}, RHS: []ecfd.Cell{ecfd.Any()}}),
	}
}

// TestSnapshotMatchesLegacy drives randomized dirty customer instances,
// with mutation churn between rounds, through both detectors.
func TestSnapshotMatchesLegacy(t *testing.T) {
	for _, seed := range []int64{2, 19, 53} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			in := gen.Customers(gen.CustomerConfig{N: 400, Seed: seed, ErrorRate: 0.1})
			set := benchSet(in.Schema())
			for round := 0; round < 8; round++ {
				for i, e := range set {
					legacy := ecfd.Detect(in, e)
					snap := relation.SnapshotOf(in)
					got := ecfd.DetectWithSnapshot(snap, e, snap.CodeIndexOn(e.LHS()))
					if !reflect.DeepEqual(legacy, got) {
						t.Fatalf("seed %d round %d ecfd %d: legacy %d violations, snapshot %d:\nlegacy   %v\nsnapshot %v",
							seed, round, i, len(legacy), len(got), legacy, got)
					}
					if sg, sl := ecfd.SatisfiesWithSnapshot(snap, e, nil), ecfd.Satisfies(in, e); sg != sl {
						t.Fatalf("seed %d round %d ecfd %d: Satisfies disagree (snapshot %v legacy %v)", seed, round, i, sg, sl)
					}
				}
				// Churn: updates on LHS and RHS attributes, inserts, deletes.
				for i := 0; i < 12; i++ {
					ids := in.IDs()
					switch r.Intn(4) {
					case 0:
						in.MustInsert(relation.Int(44), relation.Int(int64(131+r.Intn(5))),
							relation.Int(int64(1000000+r.Intn(100))), relation.Str("n"),
							relation.Str(fmt.Sprintf("st%d", r.Intn(6))),
							relation.Str([]string{"EDI", "MH", "NYC", "GLA"}[r.Intn(4)]),
							relation.Str(fmt.Sprintf("EH%d 1LE", r.Intn(5))))
					case 1:
						if len(ids) > 0 {
							in.Delete(ids[r.Intn(len(ids))])
						}
					case 2:
						if len(ids) > 0 {
							in.Update(ids[r.Intn(len(ids))], 5,
								relation.Str([]string{"EDI", "MH", "NYC", "GLA", "LDN"}[r.Intn(5)]))
						}
					default:
						if len(ids) > 0 {
							in.Update(ids[r.Intn(len(ids))], 1, relation.Int(int64(131+r.Intn(12))))
						}
					}
				}
			}
		})
	}
}

// TestSnapshotForcedCollisions re-checks equivalence with every probe
// forced into one collision chain.
func TestSnapshotForcedCollisions(t *testing.T) {
	defer relation.SetCodeHasherForTest(func([]uint32) uint64 { return 7 })()
	in := gen.Customers(gen.CustomerConfig{N: 250, Seed: 9, ErrorRate: 0.15})
	for i, e := range benchSet(in.Schema()) {
		legacy := ecfd.Detect(in, e)
		snap := relation.NewSnapshot(in)
		got := ecfd.DetectWithSnapshot(snap, e, nil)
		if !reflect.DeepEqual(legacy, got) {
			t.Fatalf("ecfd %d under forced collisions: legacy %v, snapshot %v", i, legacy, got)
		}
	}
}

// TestDetectDeterministic pins the satellite: repeated Detect calls over
// the same instance yield identical slices (the group iteration used to
// ride map order).
func TestDetectDeterministic(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 300, Seed: 4, ErrorRate: 0.2})
	for _, e := range benchSet(in.Schema()) {
		first := ecfd.Detect(in, e)
		for i := 0; i < 5; i++ {
			if again := ecfd.Detect(in, e); !reflect.DeepEqual(first, again) {
				t.Fatalf("Detect not deterministic: %v vs %v", first, again)
			}
		}
		// And it is in canonical (Row, T1, T2, Attr) order.
		for i := 1; i < len(first); i++ {
			a, b := first[i-1], first[i]
			if a.Row > b.Row || (a.Row == b.Row && (a.T1 > b.T1 ||
				(a.T1 == b.T1 && (a.T2 > b.T2 || (a.T2 == b.T2 && a.Attr > b.Attr))))) {
				t.Fatalf("Detect out of order at %d: %v before %v", i, a, b)
			}
		}
	}
}

// TestDetectTouchedRestriction checks the incremental entry point for
// single-tuple (membership) violations: restricted to touched TIDs it
// reports exactly the full detection's single-tuple violations on those
// TIDs, and pair checks cover the touched tuples' groups.
func TestDetectTouchedRestriction(t *testing.T) {
	in := gen.Customers(gen.CustomerConfig{N: 300, Seed: 8, ErrorRate: 0.2})
	e := benchSet(in.Schema())[1] // membership-only RHS: all single-tuple
	snap := relation.SnapshotOf(in)
	full := ecfd.DetectWithSnapshot(snap, e, nil)
	touched := []relation.TID{1, 2, 5, 8, 13, 999999}
	got := ecfd.DetectTouchedWithSnapshot(snap, e, nil, touched)
	inTouched := func(id relation.TID) bool {
		for _, t := range touched {
			if t == id {
				return true
			}
		}
		return false
	}
	var want []ecfd.Violation
	for _, v := range full {
		if inTouched(v.T1) {
			want = append(want, v)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DetectTouched = %v, want restriction %v", got, want)
	}
}
