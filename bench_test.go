package repro_test

// Benchmarks regenerating the scaling behaviour behind every table and
// figure of Fan (PODS 2008). Each benchmark name carries the experiment
// id of the DESIGN.md index. Absolute numbers are machine-dependent; the
// shapes — polynomial vs exponential growth, the effect of indexes,
// blocking and covers — are what reproduce the paper (run with
// `go test -bench=. -benchmem`).

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/discovery"
	"repro/internal/ecfd"
	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/md"
	"repro/internal/paperdata"
	"repro/internal/propagate"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/repr"
	"repro/internal/similarity"
)

// --- E1/E2: Figure 1/2 detection at scale --------------------------------

func BenchmarkFig1FDDetection(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := gen.Customers(gen.CustomerConfig{N: n, Seed: 1, ErrorRate: 0.05})
			s := in.Schema()
			sigma := []*cfd.CFD{paperdata.F1(s), paperdata.F2(s)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range sigma {
					cfd.Detect(in, c)
				}
			}
		})
	}
}

func BenchmarkFig2CFDDetection(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := gen.Customers(gen.CustomerConfig{N: n, Seed: 1, ErrorRate: 0.05})
			s := in.Schema()
			sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s), paperdata.Phi3(s)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfd.DetectAll(in, sigma)
			}
		})
	}
}

// Ablation: hash-index grouping vs naive quadratic pair scanning for CFD
// pair violations (the design choice DESIGN.md calls out).
func BenchmarkAblationDetectNaivePairs(b *testing.B) {
	in := gen.Customers(gen.CustomerConfig{N: 2000, Seed: 1, ErrorRate: 0.05})
	s := in.Schema()
	phi := paperdata.Phi1(s)
	row := phi.Tableau()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuples := in.Tuples()
		count := 0
		for x := 0; x < len(tuples); x++ {
			for y := x + 1; y < len(tuples); y++ {
				t1, t2 := tuples[x], tuples[y]
				match := true
				for j, p := range phi.LHS() {
					if !row.LHS[j].Matches(t1[p]) || !t1[p].Equal(t2[p]) {
						match = false
						break
					}
				}
				if match && !t1[phi.RHS()[0]].Equal(t2[phi.RHS()[0]]) {
					count++
				}
			}
		}
		_ = count
	}
}

func BenchmarkAblationDetectIndexed(b *testing.B) {
	in := gen.Customers(gen.CustomerConfig{N: 2000, Seed: 1, ErrorRate: 0.05})
	phi := paperdata.Phi1(in.Schema())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfd.Detect(in, phi)
	}
}

// --- E4: Figure 4 CIND detection at scale --------------------------------

func BenchmarkFig4CINDDetection(b *testing.B) {
	for _, n := range []int{500, 5000} {
		b.Run(fmt.Sprintf("orders=%d", n), func(b *testing.B) {
			db := gen.Orders(gen.OrdersConfig{Books: n / 4, CDs: n / 4, Orders: n, Seed: 1, ViolationRate: 0.05})
			order := db.MustInstance("order").Schema()
			book := db.MustInstance("book").Schema()
			sigma := []*cind.CIND{
				cind.MustNew(order, book, []string{"title", "price"}, []string{"title", "price"},
					[]string{"type"}, nil,
					cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}}),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cind.DetectAll(db, sigma)
			}
		})
	}
}

// --- E5/E9: Table 1 consistency rows --------------------------------------

// benchBoolCFDs builds n CFDs over a bool attribute (NP-hard regime).
func benchBoolCFDs(n int) []*cfd.CFD {
	s := relation.MustSchema("r",
		relation.FiniteAttr("A", relation.BoolDom()),
		relation.FiniteAttr("B", relation.BoolDom()),
		relation.Attr("C", relation.KindString),
	)
	var out []*cfd.CFD
	for i := 0; i < n; i++ {
		av := relation.Bool(i%2 == 0)
		bv := relation.Bool((i/2)%2 == 0)
		out = append(out, cfd.MustNew(s, []string{"A"}, []string{"B"},
			cfd.Row([]cfd.Cell{cfd.Const(av)}, []cfd.Cell{cfd.Const(bv)})))
	}
	return out
}

// benchFreeCFDs builds n constant-free-domain CFDs (quadratic regime).
func benchFreeCFDs(n int) []*cfd.CFD {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	var out []*cfd.CFD
	for i := 0; i < n; i++ {
		out = append(out, cfd.MustNew(s, []string{"A"}, []string{"B"},
			cfd.Row([]cfd.Cell{cfd.Const(relation.Str(fmt.Sprintf("a%d", i)))},
				[]cfd.Cell{cfd.Const(relation.Str(fmt.Sprintf("b%d", i%3)))})))
	}
	return out
}

func BenchmarkTable1ConsistencyCFDExact(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("deps=%d", n), func(b *testing.B) {
			set := benchBoolCFDs(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfd.ConsistentExact(set)
			}
		})
	}
}

func BenchmarkTable1ConsistencyCFDFast(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("deps=%d", n), func(b *testing.B) {
			set := benchFreeCFDs(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfd.ConsistentFast(set)
			}
		})
	}
}

func BenchmarkTable1ConsistencyCIND(b *testing.B) {
	order := paperdata.OrderSchema()
	book := paperdata.BookSchema()
	var set []*cind.CIND
	for i := 0; i < 8; i++ {
		set = append(set, cind.MustNew(order, book,
			[]string{"title", "price"}, []string{"title", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str(fmt.Sprintf("kind%d", i))}}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cind.BuildWitness(set, "", 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1ConsistencyECFD(b *testing.B) {
	s := relation.MustSchema("r",
		relation.Attr("A", relation.KindString),
		relation.Attr("B", relation.KindString),
	)
	var set []*ecfd.ECFD
	for i := 0; i < 8; i++ {
		set = append(set, ecfd.MustNew(s, []string{"A"}, []string{"B"},
			ecfd.Row{
				LHS: []ecfd.Cell{ecfd.In(relation.Str(fmt.Sprintf("a%d", i)), relation.Str(fmt.Sprintf("a%d", i+1)))},
				RHS: []ecfd.Cell{ecfd.NotIn(relation.Str(fmt.Sprintf("b%d", i)))},
			}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ecfd.Consistent(set)
	}
}

// --- E7/E8/E9: Table 1 implication rows -----------------------------------

func BenchmarkTable1ImplicationCFDExact(b *testing.B) {
	set := benchBoolCFDs(8)
	target := set[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfd.ImpliesExact(set[1:], target)
	}
}

func BenchmarkTable1ImplicationCFDFast(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("deps=%d", n), func(b *testing.B) {
			set := benchFreeCFDs(n)
			target := set[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfd.Implies(set[1:], target)
			}
		})
	}
}

func BenchmarkTable1ImplicationCIND(b *testing.B) {
	order := paperdata.OrderSchema()
	cdS := paperdata.CDSchema()
	book := paperdata.BookSchema()
	strongPhi5 := cind.MustNew(order, cdS,
		[]string{"title", "price"}, []string{"album", "price"},
		[]string{"type"}, []string{"genre"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("CD")},
			YpVals: []relation.Value{relation.Str("a-book")},
		})
	phi6 := cind.MustNew(cdS, book,
		[]string{"album", "price"}, []string{"title", "price"},
		[]string{"genre"}, []string{"format"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("a-book")},
			YpVals: []relation.Value{relation.Str("audio")},
		})
	target := cind.MustNew(order, book,
		[]string{"title", "price"}, []string{"title", "price"},
		[]string{"type"}, []string{"format"},
		cind.PatternRow{
			XpVals: []relation.Value{relation.Str("CD")},
			YpVals: []relation.Value{relation.Str("audio")},
		})
	set := []*cind.CIND{strongPhi5, phi6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cind.Implies(set, target) != cind.Yes {
			b.Fatal("implication regressed")
		}
	}
}

// --- E11: bounded interaction ---------------------------------------------

func BenchmarkTable1InteractionBounded(b *testing.B) {
	s := paperdata.CustomerSchema()
	custCFDs := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	dir := relation.MustSchema("directory",
		relation.Attr("city", relation.KindString),
		relation.Attr("country", relation.KindString))
	toDir := cind.MustNew(s, dir, []string{"city"}, []string{"city"},
		nil, []string{"country"},
		cind.PatternRow{YpVals: []relation.Value{relation.Str("UK")}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cind.InteractionConsistent(custCFDs, []*cind.CIND{toDir}, 0)
	}
}

// --- E13: propagation ------------------------------------------------------

func BenchmarkPropagationSPC(b *testing.B) {
	mk := func(name string) *relation.Schema {
		return relation.MustSchema(name,
			relation.Attr("zip", relation.KindString),
			relation.Attr("street", relation.KindString),
			relation.Attr("AC", relation.KindInt),
			relation.Attr("city", relation.KindString),
		)
	}
	schemas := map[string]*relation.Schema{"R1": mk("R1"), "R2": mk("R2"), "R3": mk("R3")}
	sigma := []*cfd.CFD{
		cfd.MustFD(schemas["R1"], []string{"zip"}, []string{"street"}),
		cfd.MustFD(schemas["R1"], []string{"AC"}, []string{"city"}),
		cfd.MustFD(schemas["R2"], []string{"AC"}, []string{"city"}),
		cfd.MustFD(schemas["R3"], []string{"AC"}, []string{"city"}),
	}
	branch := func(rel string, cc int64) propagate.Branch {
		return propagate.Branch{
			Atoms: []algebra.Atom{{Rel: rel, Terms: []algebra.Term{
				algebra.V("z"), algebra.V("s"), algebra.V("a"), algebra.V("c")}}},
			Head: []algebra.Term{
				algebra.C(relation.Int(cc)), algebra.V("z"), algebra.V("s"), algebra.V("a"), algebra.V("c")},
		}
	}
	view := propagate.View{
		Name:     "R",
		Cols:     []string{"CC", "zip", "street", "AC", "city"},
		Branches: []propagate.Branch{branch("R1", 44), branch("R2", 1), branch("R3", 31)},
	}
	vs, err := view.Schema(schemas)
	if err != nil {
		b.Fatal(err)
	}
	phi7 := cfd.MustNew(vs, []string{"CC", "zip"}, []string{"street"},
		cfd.Row([]cfd.Cell{cfd.Const(relation.Int(44)), cfd.Any()}, []cfd.Cell{cfd.Any()}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := propagate.Propagates(schemas, sigma, view, phi7)
		if err != nil || !ok {
			b.Fatal("propagation regressed")
		}
	}
}

// --- E14/E15: MD implication, RCK derivation, matching ---------------------

func benchSigma1() []*md.MD {
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	eq := similarity.Eq()
	m := similarity.MatchOp()
	ed := similarity.EditOp(0.8)
	return []*md.MD{
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "tel", Right: "phn", Op: eq}},
			[]string{"addr"}, []string{"post"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{{Left: "email", Right: "email", Op: m}},
			[]string{"FN", "LN"}, []string{"FN", "SN"}, m),
		md.MustNew(card, billing, []md.PremiseSpec{
			{Left: "LN", Right: "SN", Op: m}, {Left: "addr", Right: "post", Op: m}, {Left: "FN", Right: "FN", Op: ed}},
			paperdata.Yc(), paperdata.Yb(), m),
	}
}

func BenchmarkMDImplication(b *testing.B) {
	sigma := benchSigma1()
	card := paperdata.CardSchema()
	billing := paperdata.BillingSchema()
	rck2 := md.MustRelativeKey(card, billing,
		[]string{"LN", "tel", "FN"}, []string{"SN", "phn", "FN"},
		[]similarity.Op{similarity.Eq(), similarity.Eq(), similarity.EditOp(0.8)},
		paperdata.Yc(), paperdata.Yb())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !md.Implies(sigma, rck2) {
			b.Fatal("implication regressed")
		}
	}
}

func BenchmarkRCKDerivation(b *testing.B) {
	sigma := benchSigma1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := md.DeriveRCKs(sigma, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectIdentification(b *testing.B) {
	sigma := benchSigma1()
	derived, err := md.DeriveRCKs(sigma, paperdata.Yc(), paperdata.Yb(), md.DeriveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	card, billing, _ := gen.CardBilling(gen.CardBillingConfig{
		NPersons: 300, Seed: 7, AbbrevRate: 0.15, TypoRate: 0.1, AddrDivergeRate: 0.3,
	})
	for _, block := range []bool{false, true} {
		b.Run(fmt.Sprintf("blocking=%v", block), func(b *testing.B) {
			matcher := &match.Matcher{
				Left: card, Right: billing, Rules: derived,
				TargetL: paperdata.Yc(), TargetR: paperdata.Yb(),
			}
			if block {
				blocker, err := match.SoundexBlocker(card.Schema(), billing.Schema(), "LN", "SN")
				if err != nil {
					b.Fatal(err)
				}
				matcher.Blocker = blocker
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := matcher.Pairs(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E16/E17: repairs -------------------------------------------------------

func BenchmarkRepairEnumeration(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := gen.Example51(n)
			db := relation.NewDatabase()
			db.Add(in)
			dcs, _ := denial.Key(in.Schema(), []string{"A"})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := repair.BuildHypergraph(db, dcs)
				if err != nil {
					b.Fatal(err)
				}
				if got := h.CountXRepairs(0); got != 1<<n {
					b.Fatalf("repairs = %d", got)
				}
			}
		})
	}
}

func BenchmarkHeuristicRepair(b *testing.B) {
	s := paperdata.CustomerSchema()
	sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dirty := gen.Customers(gen.CustomerConfig{N: n, Seed: int64(i), ErrorRate: 0.05})
				b.StartTimer()
				if _, err := repair.RepairCFDs(dirty, sigma, repair.URepairOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E18/E19: CQA and the nucleus ------------------------------------------

func BenchmarkCQAEnumeration(b *testing.B) {
	in := gen.Example51(8)
	db := relation.NewDatabase()
	db.Add(in)
	dcs, _ := denial.Key(in.Schema(), []string{"A"})
	q := algebra.CQ{
		Head:  []algebra.Term{algebra.V("a")},
		Atoms: []algebra.Atom{{Rel: "r", Terms: []algebra.Term{algebra.V("a"), algebra.V("b")}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cqa.CertainAnswers(db, dcs, q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCQARewriting(b *testing.B) {
	in := gen.Customers(gen.CustomerConfig{N: 5000, Seed: 3, ErrorRate: 0.05})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cqa.CertainByKeyRewriting(in, []string{"CC", "AC", "phn"}, nil, []string{"city"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNucleusVsEnumeration(b *testing.B) {
	in := gen.Example51(10)
	key := cfd.MustFD(in.Schema(), []string{"A"}, []string{"B"})
	b.Run("nucleus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repr.Nucleus(in, []*cfd.CFD{key}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enumerate-repairs", func(b *testing.B) {
		db := relation.NewDatabase()
		db.Add(in)
		dcs, _ := denial.Key(in.Schema(), []string{"A"})
		for i := 0; i < b.N; i++ {
			h, err := repair.BuildHypergraph(db, dcs)
			if err != nil {
				b.Fatal(err)
			}
			h.EnumerateXRepairs(0)
		}
	})
}

// --- E20: discovery ----------------------------------------------------------

func BenchmarkDiscovery(b *testing.B) {
	in := gen.Customers(gen.CustomerConfig{N: 1000, Seed: 5, ErrorRate: 0})
	b.Run("fds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.DiscoverFDs(in, discovery.Options{MaxLHS: 2})
		}
	})
	b.Run("constant-cfds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			discovery.DiscoverConstantCFDs(in, discovery.Options{MaxLHS: 2, MinSupport: 10})
		}
	})
}

// Ablation: full re-detection vs incremental detection after one update.
func BenchmarkAblationDetectFullAfterUpdate(b *testing.B) {
	in := gen.Customers(gen.CustomerConfig{N: 5000, Seed: 9, ErrorRate: 0})
	phi := paperdata.Phi1(in.Schema())
	street := in.Schema().MustLookup("street")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Update(0, street, relation.Str(fmt.Sprintf("Changed %d", i)))
		cfd.Detect(in, phi)
	}
}

func BenchmarkAblationDetectIncrementalAfterUpdate(b *testing.B) {
	in := gen.Customers(gen.CustomerConfig{N: 5000, Seed: 9, ErrorRate: 0})
	phi := paperdata.Phi1(in.Schema())
	street := in.Schema().MustLookup("street")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Update(0, street, relation.Str(fmt.Sprintf("Changed %d", i)))
		cfd.DetectTouched(in, phi, []relation.TID{0})
	}
}

// WSD (Section 5.3 world-set decompositions) vs explicit enumeration.
func BenchmarkWSDConstruction(b *testing.B) {
	in := gen.Example51(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repr.WSDFromKeyRepairs(in, []string{"A"}); err != nil {
			b.Fatal(err)
		}
	}
}

// E21: master-data repair (the Section 5.1 Remark).
func BenchmarkMasterRepair(b *testing.B) {
	s := paperdata.CustomerSchema()
	sigma := []*cfd.CFD{paperdata.Phi1(s), paperdata.Phi2(s)}
	key := md.MustRelativeKey(s, s,
		[]string{"phn"}, []string{"phn"},
		[]similarity.Op{similarity.Eq()},
		[]string{"street", "city", "zip"}, []string{"street", "city", "zip"})
	master := gen.Customers(gen.CustomerConfig{N: 1000, Seed: 55, ErrorRate: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dirty := gen.Customers(gen.CustomerConfig{N: 1000, Seed: 55, ErrorRate: 0})
		city := s.MustLookup("city")
		for j, id := range dirty.IDs() {
			if j%25 == 0 {
				dirty.Update(id, city, relation.Str("Wrong"))
			}
		}
		b.StartTimer()
		if _, err := repair.RepairWithMaster(dirty, sigma, master, []*md.MD{key}, repair.URepairOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
