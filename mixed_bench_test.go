package repro_test

// Benchmarks for mixed-class detection on the constraint-agnostic
// engine (DESIGN.md E24):
//
//	cind=legacy       cind.DetectAll — string-keyed target indexes (shared
//	                  across the set since PR 4) and a per-source-tuple
//	                  string-key probe per tableau row
//	cind=engine       Engine.DetectBatch over the CINDs only — columnar
//	                  DBSnapshot, shared source-group and target-key
//	                  CodeIndexes, one integer-code probe per source
//	                  group; the snapshot cache is warm (steady state)
//	cind=enginecold   cind=engine with the version-keyed caches defeated
//	                  each iteration: freeze + intern + index from scratch
//	mixed=legacy      the per-class legacy detectors back to back
//	                  (cfd.DetectAll + cind.DetectAll + ecfd.DetectAll)
//	mixed=engine      one Engine.DetectBatch over the whole CFD+CIND+eCFD
//	                  batch through one shared DBSnapshot (warm)
//
// on gen-produced order/book/CD databases of 10k–100k order tuples at a
// 5% violation rate. The CIND speedup claimed in EXPERIMENTS.md E24 is
// measured here, not asserted:
//
//	go test -run '^$' -bench DetectMixed -benchmem .

import (
	"fmt"
	"testing"

	"repro/internal/cfd"
	"repro/internal/cind"
	"repro/internal/detect"
	"repro/internal/ecfd"
	"repro/internal/gen"
	"repro/internal/relation"
)

// mixedBenchSigma builds the E24 rule set over the order/book/CD
// schemas: two CFDs and two eCFDs on order plus the three Figure 4
// CINDs. The second CFD's LHS position sequence equals ϕ4/ϕ5's source
// grouping, so the engine plan shares that index across classes.
func mixedBenchSigma(db *relation.Database) ([]*cfd.CFD, []*cind.CIND, []*ecfd.ECFD) {
	order := db.MustInstance("order").Schema()
	book := db.MustInstance("book").Schema()
	cd := db.MustInstance("CD").Schema()
	cfds := []*cfd.CFD{
		cfd.MustFD(order, []string{"title"}, []string{"price"}),
		cfd.MustFD(order, []string{"title", "price", "type"}, []string{"asin"}),
	}
	cinds := []*cind.CIND{
		cind.MustNew(order, book,
			[]string{"title", "price"}, []string{"title", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("book")}}),
		cind.MustNew(order, cd,
			[]string{"title", "price"}, []string{"album", "price"},
			[]string{"type"}, nil,
			cind.PatternRow{XpVals: []relation.Value{relation.Str("CD")}}),
		cind.MustNew(cd, book,
			[]string{"album", "price"}, []string{"title", "price"},
			[]string{"genre"}, []string{"format"},
			cind.PatternRow{
				XpVals: []relation.Value{relation.Str("a-book")},
				YpVals: []relation.Value{relation.Str("audio")},
			}),
	}
	ecfds := []*ecfd.ECFD{
		ecfd.MustNew(order, []string{"type"}, []string{"price"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.NotIn(relation.Str("book"), relation.Str("CD"))},
				RHS: []ecfd.Cell{ecfd.Any()}}),
		ecfd.MustNew(order, []string{"title"}, []string{"type"},
			ecfd.Row{LHS: []ecfd.Cell{ecfd.Any()},
				RHS: []ecfd.Cell{ecfd.In(relation.Str("book"), relation.Str("CD"))}}),
	}
	return cfds, cinds, ecfds
}

// defeatCaches performs a no-op update on every relation so the
// version-keyed snapshot (and DBSnapshot) caches miss.
func defeatCaches(b *testing.B, db *relation.Database) {
	b.Helper()
	for _, name := range db.Names() {
		in := db.MustInstance(name)
		id := in.IDs()[0]
		t0, _ := in.Tuple(id)
		if err := in.Update(id, 0, t0[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectMixed(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		db := gen.Orders(gen.OrdersConfig{Books: n / 4, CDs: n / 4, Orders: n, Seed: 17, ViolationRate: 0.05})
		cfds, cinds, ecfds := mixedBenchSigma(db)
		cindCs := detect.WrapCINDs(cinds)
		var all []detect.Constraint
		all = append(all, detect.WrapCFDs(cfds)...)
		all = append(all, cindCs...)
		all = append(all, detect.WrapECFDs(ecfds)...)

		b.Run(fmt.Sprintf("n=%d/cind=legacy", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cind.DetectAll(db, cinds)
			}
		})
		b.Run(fmt.Sprintf("n=%d/cind=engine", n), func(b *testing.B) {
			b.ReportAllocs()
			e := detect.New(1)
			e.DetectBatch(db, cindCs) // warm the snapshot cache: steady state
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.DetectBatch(db, cindCs)
			}
		})
		b.Run(fmt.Sprintf("n=%d/cind=enginecold", n), func(b *testing.B) {
			b.ReportAllocs()
			// Changelogs disabled: the no-op updates below cannot be
			// caught up by delta, so every iteration pays the full
			// freeze + intern + index build — the genuinely cold cost.
			cold := db.Clone()
			for _, name := range cold.Names() {
				cold.MustInstance(name).SetChangelogCap(-1)
			}
			e := detect.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				defeatCaches(b, cold)
				e.DetectBatch(cold, cindCs)
			}
		})
		b.Run(fmt.Sprintf("n=%d/mixed=legacy", n), func(b *testing.B) {
			b.ReportAllocs()
			order := db.MustInstance("order")
			for i := 0; i < b.N; i++ {
				cfd.DetectAll(order, cfds)
				cind.DetectAll(db, cinds)
				ecfd.DetectAll(order, ecfds)
			}
		})
		b.Run(fmt.Sprintf("n=%d/mixed=engine", n), func(b *testing.B) {
			b.ReportAllocs()
			e := detect.New(1)
			e.DetectBatch(db, all)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.DetectBatch(db, all)
			}
		})
		b.Run(fmt.Sprintf("n=%d/mixed=parallel", n), func(b *testing.B) {
			b.ReportAllocs()
			e := detect.New(0)
			e.DetectBatch(db, all)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.DetectBatch(db, all)
			}
		})
	}
}
